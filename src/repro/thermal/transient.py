"""Transient temperature evolution (supporting Section V.A).

The paper's two-step decomposition rests on a time-scale separation:
"Temperature evolution in the data center is in orders of minutes, while
the execution of a task is in orders of seconds or milliseconds."  The
steady-state model of :mod:`repro.thermal.heatflow` never shows that;
this module adds the missing dynamics with the standard first-order
thermal-mass extension of the abstract heat-flow model:

* inlet mixing is instantaneous (air transport is fast):
  ``T_in(t) = A @ T_out(t)``;
* each compute node's *outlet* relaxes toward its steady target with a
  thermal time constant ``tau`` (chassis + heatsink mass):
  ``dT_out/dt = (T_in + P/(rho Cp F) - T_out) / tau``;
* CRAC outlets track their setpoints immediately (their control loops
  are much faster than room dynamics).

The resulting linear ODE is integrated with the exact exponential
update for the linear part (matrix-free explicit stepping is fine since
``tau >> dt``).  Its fixed point is exactly the
:meth:`~repro.thermal.heatflow.HeatFlowModel.steady_state` solution,
which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.thermal.heatflow import HeatFlowModel

__all__ = ["TransientResult", "simulate_transient", "time_to_steady_state"]

#: Default node thermal time constant, seconds ("orders of minutes").
DEFAULT_TAU_S: float = 120.0


@dataclass
class TransientResult:
    """Trajectory of a transient thermal simulation.

    Attributes
    ----------
    times:
        Sample instants, seconds.
    t_out:
        Outlet temperatures, shape ``(len(times), n_units)``.
    t_in:
        Inlet temperatures, same shape.
    """

    times: np.ndarray
    t_out: np.ndarray
    t_in: np.ndarray

    def max_inlet_overshoot(self, redline_c: np.ndarray) -> float:
        """Largest transient redline violation along the trajectory, C.

        Positive values mean some inlet exceeded its redline *during*
        the transient even if the final steady state is feasible — the
        hazard a first-step assignment must leave margin for.
        """
        return float((self.t_in - redline_c[None, :]).max())

    def violation_minutes(self, redline_c: np.ndarray,
                          tol: float = 1e-6) -> float:
        """Minutes of the trajectory with *any* inlet above its redline.

        The chaos-testing metric: after a fault, even a derated plan can
        spend a while above a redline before settling; this integrates
        that exposure.  The violation indicator is integrated with the
        trapezoid rule — each sample is weighted by half the gap to each
        neighbor (so boundary samples, including a violation only at the
        terminal sample, count half an interval, and a trajectory whose
        final step was clamped to the horizon is never over-counted).
        """
        violated = np.any(self.t_in > redline_c[None, :] + tol, axis=1)
        if self.times.size < 2:
            return 0.0
        gaps = np.diff(self.times)
        weights = np.empty_like(self.times)
        weights[0] = gaps[0] / 2.0
        weights[-1] = gaps[-1] / 2.0
        weights[1:-1] = (gaps[:-1] + gaps[1:]) / 2.0
        return float(weights[violated].sum()) / 60.0


def simulate_transient(model: HeatFlowModel,
                       t_crac_out: np.ndarray,
                       node_power_kw: np.ndarray,
                       t_out_initial: np.ndarray,
                       duration_s: float,
                       tau_s: float = DEFAULT_TAU_S,
                       dt_s: float = 1.0) -> TransientResult:
    """Integrate the first-order room dynamics from an initial state.

    Parameters
    ----------
    model:
        The steady-state heat-flow model supplying ``A`` and flows.
    t_crac_out / node_power_kw:
        The (new) operating point being approached.
    t_out_initial:
        Outlet temperatures at ``t = 0`` for every unit (CRACs first);
        typically the steady state of the *previous* operating point.
    duration_s / dt_s:
        Horizon and step.  ``dt_s`` must be well below ``tau_s``.
    tau_s:
        Node thermal time constant.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and step must be positive")
    if dt_s > tau_s / 4:
        raise ValueError(
            f"dt {dt_s}s too coarse for tau {tau_s}s (need dt <= tau/4)")
    t_crac_out = np.asarray(t_crac_out, dtype=float)
    p = np.asarray(node_power_kw, dtype=float)
    x = np.asarray(t_out_initial, dtype=float).copy()
    n_units = model.n_units
    if x.shape != (n_units,):
        raise ValueError(f"initial state must have {n_units} entries")
    nc = model.n_crac

    # The final sample lands exactly at ``duration_s``: when the horizon
    # is not a multiple of the step, the trajectory ends with a shorter
    # partial step (with its own exact decay factor) instead of
    # integrating past the requested horizon.
    full = int(np.floor(duration_s / dt_s + 1e-12))
    remainder = duration_s - full * dt_s
    partial = remainder > 1e-9 * dt_s
    steps = full + (1 if partial else 0)
    last_dt = remainder if partial else dt_s
    times = np.empty(steps + 1)
    outs = np.empty((steps + 1, n_units))
    ins = np.empty((steps + 1, n_units))
    decay = 1.0 - np.exp(-dt_s / tau_s)   # exact first-order update
    last_decay = 1.0 - np.exp(-last_dt / tau_s)
    rise = model.node_heat_coeff * p

    x[:nc] = t_crac_out                    # CRAC control is instantaneous
    for s in range(steps + 1):
        t_in = model.mix @ x
        times[s] = duration_s if s == steps else s * dt_s
        outs[s] = x
        ins[s] = t_in
        if s == steps:
            break
        target = t_in[nc:] + rise
        x = x.copy()
        x[nc:] += (last_decay if s == steps - 1 else decay) \
            * (target - x[nc:])
    return TransientResult(times=times, t_out=outs, t_in=ins)


def time_to_steady_state(model: HeatFlowModel,
                         t_crac_out: np.ndarray,
                         node_power_kw: np.ndarray,
                         t_out_initial: np.ndarray,
                         tolerance_c: float = 0.1,
                         tau_s: float = DEFAULT_TAU_S,
                         dt_s: float = 1.0,
                         max_s: float = 3600.0) -> float:
    """Seconds until every outlet is within ``tolerance_c`` of steady state.

    Returns ``inf`` if not settled within ``max_s`` (should not happen
    for a stable model).  This quantifies the "orders of minutes" claim
    that justifies the paper's two-step split.

    A room already *at* the fixed point settles in ``0.0`` seconds by
    definition, and that answer must not depend on the integration
    bookkeeping (``max_s`` / ``dt_s`` validation): holding the model at
    its own steady state is checked before any trajectory is built, so
    even a degenerate ``max_s`` of 0 returns immediately instead of
    tripping the positive-duration validation of
    :func:`simulate_transient`.
    """
    target = model.steady_state(np.asarray(t_crac_out, dtype=float),
                                np.asarray(node_power_kw, dtype=float))
    x0 = np.asarray(t_out_initial, dtype=float).copy()
    if x0.shape != (model.n_units,):
        raise ValueError(
            f"initial state must have {model.n_units} entries")
    # CRAC control is instantaneous, so the effective start state has
    # the commanded outlets substituted before the fixed-point check
    x0[:model.n_crac] = np.asarray(t_crac_out, dtype=float)
    if float(np.abs(x0 - target.t_out).max()) <= tolerance_c:
        return 0.0
    result = simulate_transient(model, t_crac_out, node_power_kw,
                                t_out_initial, max_s, tau_s, dt_s)
    err = np.abs(result.t_out - target.t_out[None, :]).max(axis=1)
    settled = np.nonzero(err <= tolerance_c)[0]
    if settled.size == 0:
        return float("inf")
    return float(result.times[settled[0]])
