"""Parameter sweeps for capacity planning and what-if analysis.

The paper fixes ``Pconst`` at the Eq. 18 midpoint; an operator deciding
*how much* power to provision (the Morgan Stanley problem of the
introduction — power availability limits deployment) wants the whole
reward-vs-cap curve, and a facilities engineer wants to know what a
degree of redline headroom is worth.  Both sweeps reuse the first-step
solvers unchanged.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import partial
from pathlib import Path

import numpy as np

from repro.core.assignment import three_stage_assignment
from repro.core.baseline import solve_baseline
from repro.datacenter.builder import DataCenter
from repro.workload.tasktypes import Workload

__all__ = ["CapSweepPoint", "sweep_power_cap", "RedlineSweepPoint",
           "sweep_node_redline"]


@dataclass(frozen=True)
class CapSweepPoint:
    """One point of the reward-vs-power-cap curve.

    ``marginal_reward_per_kw`` is the forward difference to the next
    point (NaN at the last point) — the operator's "what is one more
    kilowatt worth" number.
    """

    p_const: float
    reward_three_stage: float
    reward_baseline: float
    power_used_kw: float
    marginal_reward_per_kw: float = float("nan")

    @property
    def improvement_pct(self) -> float:
        if self.reward_baseline <= 0:
            return float("nan")
        return 100.0 * (self.reward_three_stage - self.reward_baseline) \
            / self.reward_baseline


def _cap_point(cap: float, *, datacenter: DataCenter, workload: Workload,
               psi: float, include_baseline: bool) -> CapSweepPoint | None:
    """Solve one cap (module-level so worker pools can pickle it)."""
    try:
        ours = three_stage_assignment(datacenter, workload, float(cap),
                                      psi=psi)
    except RuntimeError:
        return None         # cap below idle power: nothing to operate
    base_reward = float("nan")
    if include_baseline:
        base, _ = solve_baseline(datacenter, workload, float(cap))
        base_reward = base.reward_rate
    return CapSweepPoint(
        p_const=float(cap),
        reward_three_stage=ours.reward_rate,
        reward_baseline=base_reward,
        power_used_kw=ours.power(datacenter).total,
    )


def sweep_power_cap(datacenter: DataCenter, workload: Workload,
                    caps_kw: np.ndarray, *, psi: float = 50.0,
                    include_baseline: bool = True, jobs: int = 1,
                    cache_dir: str | Path | None = None,
                    resume: bool = False, cache_tag: str | None = None
                    ) -> list[CapSweepPoint]:
    """Solve both techniques across a grid of power caps.

    Caps below the room's idle power are skipped (no feasible
    operating point).  Points are returned in increasing cap order with
    forward-difference marginal rewards filled in.

    ``jobs > 1`` fans the per-cap solves out over the experiment
    engine's process pool (each cap is independent; results are
    identical to the serial path).  With ``cache_dir`` and a
    ``cache_tag`` naming the room (e.g. ``"sweep-set3-n25-seed4"``),
    finished points are written to disk and — with ``resume=True`` —
    replayed instead of re-solved.
    """
    from repro.experiments.engine import (load_point, parallel_map,
                                          store_point)

    caps = np.sort(np.asarray(caps_kw, dtype=float))
    if caps.size == 0:
        raise ValueError("need at least one cap")
    use_cache = cache_dir is not None and cache_tag is not None

    def point_key(cap: float) -> dict:
        return {"cap": float(cap), "psi": float(psi),
                "baseline": bool(include_baseline)}

    solved: dict[float, CapSweepPoint | None] = {}
    pending: list[float] = []
    for cap in caps:
        payload = load_point(cache_dir, cache_tag, point_key(cap)) \
            if (use_cache and resume) else None
        if payload is not None:
            point = payload["point"]
            solved[float(cap)] = None if point is None \
                else CapSweepPoint(**point)
        else:
            pending.append(float(cap))

    solver = partial(_cap_point, datacenter=datacenter, workload=workload,
                     psi=psi, include_baseline=include_baseline)
    for cap, point in zip(pending, parallel_map(solver, pending, jobs=jobs)):
        solved[cap] = point
        if use_cache:
            store_point(cache_dir, cache_tag, point_key(cap),
                        {"point": None if point is None else asdict(point)})

    rows = [solved[float(cap)] for cap in caps
            if solved[float(cap)] is not None]
    # forward-difference marginal value of provisioned power
    out: list[CapSweepPoint] = []
    for idx, point in enumerate(rows):
        if idx + 1 < len(rows):
            nxt = rows[idx + 1]
            dcap = nxt.p_const - point.p_const
            marginal = (nxt.reward_three_stage
                        - point.reward_three_stage) / dcap \
                if dcap > 0 else float("nan")
        else:
            marginal = float("nan")
        out.append(CapSweepPoint(
            p_const=point.p_const,
            reward_three_stage=point.reward_three_stage,
            reward_baseline=point.reward_baseline,
            power_used_kw=point.power_used_kw,
            marginal_reward_per_kw=marginal,
        ))
    return out


@dataclass(frozen=True)
class RedlineSweepPoint:
    """One point of the reward-vs-node-redline curve."""

    node_redline_c: float
    reward_rate: float
    t_crac_out_mean: float


def sweep_node_redline(datacenter: DataCenter, workload: Workload,
                       p_const: float, redlines_c: np.ndarray,
                       *, psi: float = 50.0) -> list[RedlineSweepPoint]:
    """What is a degree of thermal headroom worth?

    Re-solves the three-stage assignment while varying the compute-node
    redline temperature (CRAC redlines unchanged).  Warmer redlines let
    the CRACs run warmer (cheaper cooling), freeing cap for compute.
    The data center's redline attribute is restored afterwards.
    """
    original = datacenter.node_redline_c
    rows: list[RedlineSweepPoint] = []
    try:
        for redline in np.asarray(redlines_c, dtype=float):
            datacenter.node_redline_c = float(redline)
            try:
                res = three_stage_assignment(datacenter, workload, p_const,
                                             psi=psi)
            except RuntimeError:
                continue    # too strict to operate at all
            rows.append(RedlineSweepPoint(
                node_redline_c=float(redline),
                reward_rate=res.reward_rate,
                t_crac_out_mean=float(res.t_crac_out.mean()),
            ))
    finally:
        datacenter.node_redline_c = original
    return rows
