"""Queueing analysis — predicting the fluid-plan / DES gap analytically.

The second-step DES drops tasks whose deadlines a bursty arrival stream
overruns; the M/M/c predictor of :mod:`repro.core.queueing` forecasts
those drops from the plan alone.  This benchmark compares prediction and
simulation per task type on one room — the shape to look for: types
whose slack barely covers their execution time drop hardest, and the
predictor flags the same types.
"""

import numpy as np

from repro.core import predict_completion, three_stage_assignment
from repro.simulate import simulate_trace
from repro.workload import generate_trace


def bench_queueing_model(benchmark, capsys, bench_scenario, scale):
    sc = bench_scenario
    dc, wl = sc.datacenter, sc.workload
    plan = three_stage_assignment(dc, wl, sc.p_const, psi=50.0)

    rates, pools = benchmark(predict_completion, dc, wl, plan.pstates,
                             plan.tc)

    trace = generate_trace(wl, scale.des_horizon,
                           np.random.default_rng(31))
    metrics = simulate_trace(dc, wl, plan.tc, plan.pstates, trace,
                             duration=scale.des_horizon)
    planned = plan.tc.sum(axis=1)
    achieved = metrics.atc.sum(axis=1)

    with capsys.disabled():
        print()
        print("M/M/c prediction vs DES, per task type")
        print(f"{'type':>6}{'slack/exec':>12}{'planned/s':>11}"
              f"{'predicted/s':>13}{'simulated/s':>13}")
        for i in range(wl.n_task_types):
            if planned[i] <= 1e-9:
                continue
            # slack-to-execution ratio on the fastest core type at P0
            best_exec = 1.0 / wl.ecs[i, :, 0].max()
            ratio = wl.deadline_slack[i] / best_exec
            print(f"{i:>6}{ratio:>12.1f}{planned[i]:>11.2f}"
                  f"{rates[i]:>13.2f}{achieved[i]:>13.2f}")
        pred_total = rates.sum()
        sim_total = achieved.sum()
        print(f"totals: predicted {pred_total:.1f}/s vs simulated "
              f"{sim_total:.1f}/s "
              f"({100 * abs(pred_total - sim_total) / sim_total:.1f}% apart)")
        print(f"class pools: {len(pools)}, utilizations "
              + ", ".join(f"{p.utilization:.2f}" for p in pools[:6]))

    # predictions bounded by the plan and in the DES's ballpark
    assert np.all(rates <= planned + 1e-9)
    assert rates.sum() >= 0.5 * achieved.sum()
