"""Coefficient of Performance (CoP) model for CRAC units.

The paper uses the CoP curve measured at the HP Labs Utility Data Center
(Moore et al. [22]), Eq. 8::

    CoP(tau) = 0.0068 tau^2 + 0.0008 tau + 0.458

where ``tau`` is the CRAC *outlet* temperature in Celsius.  Higher outlet
temperatures make the chiller more efficient (more heat removed per watt
of cooling power), which is the coupling that makes the whole assignment
problem thermal-aware: running nodes hotter lets the CRACs run at higher
outlet temperatures, but risks the redline constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CoPModel", "HP_UTILITY_COP"]


@dataclass(frozen=True)
class CoPModel:
    """Quadratic CoP model ``a2 * tau^2 + a1 * tau + a0``.

    The default coefficients reproduce Eq. 8.  Instances are callable.
    """

    a2: float = 0.0068
    a1: float = 0.0008
    a0: float = 0.458

    def __call__(self, outlet_temp_c):
        """CoP at outlet temperature(s) ``tau`` (Celsius).

        Accepts scalars or arrays.  Raises if the CoP would be
        non-positive (the quadratic is positive for all tau >= 0 with the
        default coefficients; custom coefficients could violate this).
        """
        tau = np.asarray(outlet_temp_c, dtype=float)
        cop = self.a2 * tau ** 2 + self.a1 * tau + self.a0
        if np.any(cop <= 0.0):
            raise ValueError(
                f"CoP model produced non-positive CoP at tau={outlet_temp_c}")
        return cop if cop.ndim else float(cop)


#: The measured HP Labs Utility Data Center CoP curve (paper Eq. 8).
HP_UTILITY_COP = CoPModel()
