"""Committed baseline of grandfathered findings.

The baseline lets the CI gate demand *zero new* findings while known,
deliberate ones stay documented in one reviewable file.  Entries match
on ``(code, path, context)`` — the stripped source line — rather than
line numbers, so unrelated edits above a grandfathered site do not
invalidate it.  Matching normalizes internal whitespace (runs collapse
to one space), so a formatting-only reflow cannot orphan an entry;
entries whose stored context matched only through that normalization
are reported as *drifted* (refresh the text), separately from *stale*
entries that match nothing at all (delete them).  Every entry carries
a mandatory ``reason``.

File format (JSON, sorted keys, one entry per kept finding)::

    {
      "schema": 2,
      "entries": [
        {"code": "RL003", "path": "src/repro/datacenter/builder.py",
         "context": "rng = np.random.default_rng()",
         "reason": "documented convenience fallback; callers pass ..."}
      ]
    }

Schema history: 1 — exact-context matching (PR 4); 2 — whitespace-
normalized matching plus the drift report (schema-1 files load
unchanged; the entry shape is identical).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["Baseline", "load_baseline", "normalize_context",
           "write_baseline"]

BASELINE_SCHEMA = 2

#: Schemas :func:`load_baseline` accepts; 1 migrates transparently (the
#: entry shape never changed, only the matching semantics).
_COMPATIBLE_SCHEMAS = (1, 2)


def normalize_context(text: str) -> str:
    """Whitespace-insensitive form of a context line.

    Collapses every run of whitespace to a single space and strips the
    ends, so a ruff reflow (indentation shifts, spaces around
    operators) cannot orphan a baseline entry.
    """
    return " ".join(text.split())


class Baseline:
    """Multiset of grandfathered findings keyed on (code, path, context).

    Context matching is whitespace-normalized; exact-text matches are
    preferred when both an exact and a reflowed candidate exist, so the
    drift report never fires spuriously on duplicated entries.
    """

    def __init__(self, entries: list[dict[str, str]]) -> None:
        self.entries = entries
        self._budget: Counter[tuple[str, str, str]] = Counter(
            self._key_of(e) for e in entries)
        self._used: Counter[tuple[str, str, str]] = Counter()
        self._exact: Counter[tuple[str, str, str]] = Counter(
            (e["code"], e["path"], e["context"]) for e in entries)
        self._drift: dict[tuple[str, str, str], str] = {}

    @staticmethod
    def _key_of(entry: dict[str, str]) -> tuple[str, str, str]:
        return (entry["code"], entry["path"],
                normalize_context(entry["context"]))

    @staticmethod
    def _key_for(finding: Finding) -> tuple[str, str, str]:
        return (finding.code, finding.path,
                normalize_context(finding.context))

    def absorb(self, finding: Finding) -> bool:
        """Consume one matching entry; False when none remains."""
        key = self._key_for(finding)
        if self._used[key] < self._budget[key]:
            self._used[key] += 1
            exact = (finding.code, finding.path, finding.context)
            if self._exact[exact] == 0:
                self._drift.setdefault(key, finding.context)
            return True
        return False

    def stale_entries(self) -> list[dict[str, str]]:
        """Entries that matched no finding this run (fixed meanwhile)."""
        leftover = self._budget - self._used
        stale: list[dict[str, str]] = []
        seen: Counter[tuple[str, str, str]] = Counter()
        for entry in self.entries:
            key = self._key_of(entry)
            if seen[key] < leftover[key]:
                seen[key] += 1
                stale.append(entry)
        return stale

    def drifted_entries(self) -> list[dict[str, str]]:
        """Entries that matched only after whitespace normalization.

        The finding is still grandfathered — these are housekeeping
        notices, not failures.  Each row pairs the stored context with
        the reflowed source text so the refresh is a copy-paste.
        """
        out: list[dict[str, str]] = []
        emitted: set[tuple[str, str, str]] = set()
        for entry in self.entries:
            key = self._key_of(entry)
            if key in self._drift and key not in emitted:
                emitted.add(key)
                out.append({"code": entry["code"], "path": entry["path"],
                            "context": entry["context"],
                            "found_context": self._drift[key]})
        return out


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline([])
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {p}: {exc}") from exc
    if doc.get("schema") not in _COMPATIBLE_SCHEMAS:
        raise ValueError(
            f"baseline {p}: unsupported schema {doc.get('schema')!r} "
            f"(supported: {', '.join(map(str, _COMPATIBLE_SCHEMAS))})")
    entries = doc.get("entries", [])
    for entry in entries:
        missing = {"code", "path", "context", "reason"} - set(entry)
        if missing:
            raise ValueError(
                f"baseline {p}: entry {entry!r} missing {sorted(missing)}")
    return Baseline(list(entries))


def write_baseline(findings: list[Finding], path: str | Path,
                   reason: str = "TODO: justify this exemption") -> None:
    """Write every finding as a baseline entry (the adoption workflow).

    Reasons default to a marker that reviewers are expected to replace
    — a baseline entry without a real justification defeats its point.
    """
    entries = [
        {"code": f.code, "path": f.path, "context": f.context,
         "reason": reason}
        for f in sorted(findings)
    ]
    doc = {"schema": BASELINE_SCHEMA, "entries": entries}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
