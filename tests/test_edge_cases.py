"""Edge-case and degenerate-input tests across modules.

These guard the corners the main suites don't reach: single-unit rooms,
all-deadline-infeasible workloads, degenerate ARR curves, boundary
temperature grids.
"""

import numpy as np
import pytest

from repro.core.arr import aggregate_reward_rate
from repro.core.reward import reward_rate_function
from repro.core.stage3 import solve_stage3
from repro.datacenter import build_datacenter, power_bounds
from repro.experiments.figures import example_node_type, example_workload
from repro.optimize.piecewise import PiecewiseLinear
from repro.thermal import attach_thermal_model
from repro.workload.tasktypes import Workload


class TestDegenerateWorkloads:
    def make_hopeless_workload(self) -> Workload:
        """Every P-state misses the deadline."""
        return Workload(
            ecs=np.asarray([[[1.2, 0.9, 0.5, 0.0]]]),
            rewards=np.asarray([1.0]),
            deadline_slack=np.asarray([0.1]),   # < 1/1.2
            arrival_rates=np.asarray([5.0]),
        )

    def test_rr_flat_zero_when_all_deadlines_missed(self):
        wl = self.make_hopeless_workload()
        rr = reward_rate_function(wl, 0, example_node_type(), 0)
        np.testing.assert_allclose(rr.y, 0.0)

    def test_arr_hull_degenerates_gracefully(self):
        wl = self.make_hopeless_workload()
        arr = aggregate_reward_rate(wl, example_node_type(), 0, 100.0)
        assert arr.concave.is_concave()
        assert arr.concave(0.1) == 0.0
        lengths, slopes = arr.segments_decreasing_slope()
        assert np.allclose(slopes, 0.0)

    def test_stage3_zero_reward_for_hopeless_types(self, scenario):
        """A workload whose deadlines nothing can meet earns nothing."""
        wl = scenario.workload
        hopeless = Workload(
            ecs=wl.ecs,
            rewards=wl.rewards,
            deadline_slack=np.full(wl.n_task_types, 1e-9),
            arrival_rates=wl.arrival_rates,
        )
        dc = scenario.datacenter
        sol = solve_stage3(dc, hopeless, dc.all_p0_pstates())
        assert sol.reward_rate == 0.0


class TestSingleUnitRooms:
    def test_one_node_one_crac(self):
        rng = np.random.default_rng(5)
        dc = build_datacenter(n_nodes=1, n_crac=1, rng=rng,
                              nodes_per_rack=1)
        attach_thermal_model(dc, rng=rng)
        assert dc.n_units == 2
        bounds = power_bounds(dc)
        assert bounds.p_min < bounds.p_max

    def test_zero_arrival_rates_workload(self, small_dc):
        """A silent data center is valid and earns nothing."""
        rng = np.random.default_rng(6)
        from repro.workload import generate_workload

        wl = generate_workload(small_dc, rng)
        silent = Workload(ecs=wl.ecs, rewards=wl.rewards,
                          deadline_slack=wl.deadline_slack,
                          arrival_rates=np.zeros(wl.n_task_types))
        sol = solve_stage3(small_dc, silent, small_dc.all_p0_pstates())
        assert sol.reward_rate == 0.0


class TestPiecewiseBoundaries:
    def test_two_point_function(self):
        f = PiecewiseLinear([0.0, 1.0], [0.0, 3.0])
        assert f(0.5) == pytest.approx(1.5)
        assert f.concave_majorant() == f

    def test_flat_function_hull(self):
        f = PiecewiseLinear([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])
        hull = f.concave_majorant()
        assert hull(1.5) == pytest.approx(1.0)

    def test_single_dent_at_start(self):
        f = PiecewiseLinear([0.0, 1.0, 2.0], [1.0, 0.0, 1.0])
        hull = f.concave_majorant()
        assert hull(1.0) == pytest.approx(1.0)


class TestSearchLattice:
    def test_full_search_lands_on_integer_lattice(self):
        """With final_step=1, results are whole degrees — the paper's
        'granularity of 1 degree'."""
        from repro.optimize.search import coarse_to_fine_search

        res = coarse_to_fine_search(
            lambda t: -float(((t - 17.3) ** 2).sum()), 1, 10, 25,
            final_step=1.0)
        assert res.temperatures[0] == pytest.approx(
            round(res.temperatures[0]))

    def test_uniform_search_single_point_range(self):
        from repro.optimize.search import uniform_then_coordinate_search

        res = uniform_then_coordinate_search(
            lambda t: -float(t.sum()), 2, 15, 15, step=1.0)
        np.testing.assert_allclose(res.temperatures, 15.0)


class TestExampleFigures:
    def test_example_workload_slack_parameter(self):
        wl = example_workload(3.3)
        assert wl.deadline_slack[0] == 3.3

    def test_example_node_type_is_valid_spec(self):
        spec = example_node_type()
        assert spec.off_pstate == 3
        assert spec.p0_power_kw == 0.15


class TestExactSolverEdges:
    """Edge cases of the brute-force oracle (satellite 4 of the kernels
    PR): the paths a paper-scale run never exercises."""

    @staticmethod
    def _tiny(seed=0, n_nodes=2, cores=2, n_crac=2):
        from repro.datacenter.coretypes import shrunken_node_types
        from repro.workload import generate_workload

        rng = np.random.default_rng(seed)
        dc = build_datacenter(n_nodes=n_nodes, n_crac=n_crac,
                              node_types=shrunken_node_types(cores),
                              rng=rng, nodes_per_rack=min(n_nodes, 5))
        attach_thermal_model(dc, rng=rng)
        wl = generate_workload(dc, rng, n_task_types=4)
        return dc, wl

    def test_infeasible_pconst_raises(self):
        from repro.core.exact import solve_exact

        dc, wl = self._tiny()
        # well below the all-off idle power: nothing can run
        with pytest.raises(RuntimeError, match="no feasible assignment"):
            solve_exact(dc, wl, 1e-3, temp_step=4.0)

    def test_single_node_room(self):
        from repro.core.exact import solve_exact
        from repro.datacenter import power_bounds

        dc, wl = self._tiny(seed=3, n_nodes=1, n_crac=1)
        p_const = power_bounds(dc).p_const
        result = solve_exact(dc, wl, p_const, temp_step=4.0)
        assert result.reward_rate >= 0.0
        assert result.pstates.shape == (dc.n_cores,)
        node_power = dc.node_power_kw(result.pstates)
        assert dc.thermal.is_feasible(result.t_crac_out, node_power,
                                      dc.redline_c)

    def test_max_assignments_guard(self):
        from repro.core.exact import solve_exact

        dc, wl = self._tiny()
        with pytest.raises(ValueError, match="tiny rooms"):
            solve_exact(dc, wl, 10.0, max_assignments=1)

    def test_all_off_only_feasible_cap(self):
        """A cap admitting only base power forces every core off."""
        from repro.core.exact import solve_exact
        from repro.datacenter.power import total_power

        dc, wl = self._tiny(seed=1)
        all_off = dc.all_off_pstates()
        node_off = dc.node_power_kw(all_off)
        # cheapest way to idle the room over the exact solver's grid
        best_idle = None
        for t in (15.0, 19.0, 23.0):
            tv = np.full(dc.n_crac, t)
            if dc.thermal.is_feasible(tv, node_off, dc.redline_c):
                cost = total_power(dc, tv, node_off).total
                best_idle = cost if best_idle is None \
                    else min(best_idle, cost)
        assert best_idle is not None
        result = solve_exact(dc, wl, best_idle * 1.001, temp_step=4.0)
        assert np.array_equal(result.pstates, all_off)
        assert result.reward_rate == pytest.approx(0.0, abs=1e-9)


class TestMinPowerEdges:
    @staticmethod
    def _room(seed=0, n_nodes=4):
        from repro.experiments import PAPER_SET_1, scaled_down
        from repro.experiments.generator import generate_scenario

        return generate_scenario(scaled_down(PAPER_SET_1, n_nodes), seed)

    def test_unreachable_target_raises(self):
        from repro.core.minpower import minimize_power

        sc = self._room()
        with pytest.raises(RuntimeError, match="unreachable"):
            minimize_power(sc.datacenter, sc.workload, 1e9)

    def test_nonpositive_target_rejected(self):
        from repro.core.minpower import minimize_power

        sc = self._room()
        with pytest.raises(ValueError, match="must be positive"):
            minimize_power(sc.datacenter, sc.workload, 0.0)
        with pytest.raises(ValueError, match="must be positive"):
            minimize_power(sc.datacenter, sc.workload, -5.0)

    def test_single_node_room_target(self):
        from repro.core.assignment import three_stage_assignment
        from repro.core.minpower import minimize_power

        dc, wl = TestExactSolverEdges._tiny(seed=3, n_nodes=1, n_crac=1)
        p_const = power_bounds(dc).p_const
        primal = three_stage_assignment(dc, wl, p_const, psi=50.0)
        if primal.reward_rate <= 0:
            pytest.skip("this tiny room plans zero reward")
        result = minimize_power(dc, wl, 0.5 * primal.reward_rate)
        assert result.total_power_kw <= p_const + 1e-6


class TestStage2AllCoresOff:
    def test_zero_core_power_base_only_budget(self, small_dc):
        """Zero relaxed powers + base-only budgets: every core ends off
        and node power equals base power exactly."""
        from repro.core.stage2 import convert_power_to_pstates

        dc = small_dc
        zero = np.zeros(dc.n_cores)
        result = convert_power_to_pstates(dc, zero,
                                          dc.node_base_power.copy())
        assert np.array_equal(result.pstates, dc.all_off_pstates())
        np.testing.assert_allclose(result.node_power_kw,
                                   dc.node_base_power)
