"""RL031 bad: int() casts that silently drop a physical dimension."""


def quantize(t_out_c: float, node_kw: float) -> tuple[int, int]:
    whole_degrees = int(t_out_c)         # line 5: drops temperature
    whole_kw = int(node_kw)              # line 6: drops power
    return whole_degrees, whole_kw
