"""Determinism rules (RL001-RL009).

These guard the repo's bit-identical-across-``--jobs`` contract: the
three-stage solver, the chaos sweeps and the experiment cache all
promise the same numbers for the same ``(config, seed)`` regardless of
process count, hash seed or wall-clock.  Each rule targets a failure
mode this codebase has actually hit or explicitly designs against.
"""

from __future__ import annotations

import ast

from repro.lint.base import RuleVisitor, register
from repro.lint.rules.common import (dotted_name, imported_modules,
                                     imported_names)

__all__ = ["JsonSetSerialization", "UnorderedIteration", "UnseededRng",
           "WallClock"]


def _cached_imports(rule: RuleVisitor) -> dict[str, str]:
    """Per-rule-instance memo of :func:`imported_modules`."""
    cached = getattr(rule, "_imports_cache", None)
    if cached is None:
        cached = imported_modules(rule.ctx.tree)
        rule._imports_cache = cached            # type: ignore[attr-defined]
    return cached


def _cached_from_imports(rule: RuleVisitor) -> dict[str, tuple[str, str]]:
    """Per-rule-instance memo of :func:`imported_names`."""
    cached = getattr(rule, "_from_imports_cache", None)
    if cached is None:
        cached = imported_names(rule.ctx.tree)
        rule._from_imports_cache = cached       # type: ignore[attr-defined]
    return cached


def _is_set_constructor(node: ast.expr) -> bool:
    """Set literal / set comprehension / ``set(...)`` / ``frozenset(...)``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class _SetNameCollector(ast.NodeVisitor):
    """Names assigned an obvious set expression (and never reassigned
    to something else) — a cheap, scope-blind dataflow approximation
    that errs toward silence."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.other_names: set[str] = set()

    def _record(self, target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            (self.set_names if is_set else self.other_names).add(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, _is_set_constructor(node.value))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = (node.value is not None
                  and _is_set_constructor(node.value))
        self._record(node.target, is_set)
        self.generic_visit(node)

    def resolved(self) -> frozenset[str]:
        return frozenset(self.set_names - self.other_names)


@register
class UnorderedIteration(RuleVisitor):
    """Iteration order of a set leaking into ordered output."""

    code = "RL001"
    name = "unordered-iteration"
    category = "determinism"
    description = (
        "iterating a set/frozenset into an order-sensitive consumer "
        "(for loop, list(), tuple(), enumerate(), iter(), str.join(), "
        "list comprehension) — set order varies with PYTHONHASHSEED; "
        "wrap in sorted(...) to fix the order")

    _ORDERED_CALLS = ("list", "tuple", "enumerate", "iter", "reversed")

    def _set_names(self) -> frozenset[str]:
        names = getattr(self, "_cached_names", None)
        if names is None:
            collector = _SetNameCollector()
            collector.visit(self.ctx.tree)
            names = collector.resolved()
            self._cached_names = names
        return names

    def _is_set_expr(self, node: ast.expr) -> bool:
        if _is_set_constructor(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_names()
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left)
                    or self._is_set_expr(node.right))
        return False

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(node, f"{what} iterates a set in hash-dependent "
                          "order; wrap the set in sorted(...) so the "
                          "order is deterministic")

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node, "for loop")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._flag(node, "list comprehension")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        consumer: str | None = None
        if isinstance(func, ast.Name) and func.id in self._ORDERED_CALLS:
            consumer = f"{func.id}()"
        elif (isinstance(func, ast.Attribute) and func.attr == "join"
                and isinstance(func.value, (ast.Constant, ast.Name))):
            consumer = "str.join()"
        if consumer is not None and node.args \
                and self._is_set_expr(node.args[0]):
            self._flag(node, consumer)
        self.generic_visit(node)


@register
class JsonSetSerialization(RuleVisitor):
    """The PR-3 cache-split bug: ``json.dumps`` fed a set."""

    code = "RL002"
    name = "nondeterministic-serialization"
    category = "determinism"
    description = (
        "json.dumps/json.dump reached by a set (directly or via "
        "default=list) serializes members in PYTHONHASHSEED-dependent "
        "order — the bug that silently split the experiment cache "
        "across processes; canonicalize first (see "
        "repro.experiments.engine.canonical_json, which sorts set "
        "members by their canonical encoding)")

    _DEFAULT_COERCERS = ("list", "tuple", "sorted")

    def _is_json_dump(self, node: ast.Call) -> bool:
        dotted = dotted_name(node.func)
        if dotted is not None and "." in dotted:
            head, attr = dotted.rsplit(".", 1)
            mods = _cached_imports(self)
            return attr in ("dumps", "dump") and mods.get(head) == "json"
        if isinstance(node.func, ast.Name):
            origin = _cached_from_imports(self).get(node.func.id)
            return origin is not None and origin[0] == "json" \
                and origin[1] in ("dumps", "dump")
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_json_dump(node):
            payload_has_set = any(
                _is_set_constructor(sub)
                for arg in node.args for sub in ast.walk(arg))
            coercing_default = any(
                kw.arg == "default"
                and isinstance(kw.value, ast.Name)
                and kw.value.id in self._DEFAULT_COERCERS
                for kw in node.keywords)
            if payload_has_set or coercing_default:
                how = ("a set in its payload" if payload_has_set
                       else "default=list coercion")
                self.report(
                    node,
                    f"json serialization with {how} emits members in "
                    "PYTHONHASHSEED-dependent order (the PR-3 cache-key "
                    "bug); route the payload through "
                    "repro.experiments.engine.canonical_json instead")
        self.generic_visit(node)


@register
class UnseededRng(RuleVisitor):
    """Random draws outside the seeded-``Generator`` plumbing."""

    code = "RL003"
    name = "unseeded-rng"
    category = "determinism"
    description = (
        "random.* module-level draws, numpy legacy np.random.* global "
        "draws, and default_rng()/random.Random() without a seed are "
        "irreproducible; thread a seeded np.random.Generator through "
        "instead (every public entry point takes an rng argument)")

    _STDLIB_FNS = frozenset({
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "vonmisesvariate", "getrandbits",
        "seed",
    })
    _NUMPY_LEGACY_FNS = frozenset({
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "choice", "shuffle", "permutation", "uniform", "normal",
        "poisson", "exponential", "standard_normal", "beta", "gamma",
        "binomial",
    })

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        mods = _cached_imports(self)
        if dotted is not None:
            parts = dotted.split(".")
            head = mods.get(parts[0], parts[0])
            if head == "random" and len(parts) == 2:
                if parts[1] in self._STDLIB_FNS:
                    self.report(
                        node,
                        f"{dotted}() draws from the process-global "
                        "stdlib RNG; pass a seeded "
                        "np.random.Generator instead")
                elif parts[1] == "Random" and not node.args:
                    self.report(
                        node, "random.Random() without a seed is "
                              "irreproducible; pass an explicit seed")
            elif head == "numpy" and len(parts) == 3 \
                    and parts[1] == "random" \
                    and parts[2] in self._NUMPY_LEGACY_FNS:
                self.report(
                    node,
                    f"{dotted}() uses numpy's legacy global RNG; use a "
                    "seeded np.random.default_rng(seed) Generator")
        tail = dotted.rsplit(".", 1)[-1] if dotted else None
        if tail == "default_rng" and not node.args and not node.keywords:
            self.report(
                node, "default_rng() without a seed gives every call a "
                      "fresh OS-entropy stream; pass the run's seed so "
                      "results are reproducible")
        self.generic_visit(node)


@register
class WallClock(RuleVisitor):
    """Wall-clock reads in deterministic paths."""

    code = "RL004"
    name = "wall-clock"
    category = "determinism"
    description = (
        "time.time()/datetime.now() readings leak the host clock into "
        "solver/DES/cache paths; simulated time must come from the "
        "event queue and cache keys from (config, seed).  Wall-clock "
        "spans live in repro.obs, which is allowlisted "
        "(time.perf_counter for *measured durations* is fine anywhere)")

    _FORBIDDEN = frozenset({
        "time.time", "time.time_ns",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "date.today", "datetime.date.today",
    })

    def skip_file(self) -> bool:
        return self.ctx.path_matches(self.config.wallclock_allow)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted in self._FORBIDDEN:
            self.report(
                node,
                f"{dotted}() reads the host wall clock — nondeterministic "
                "input to solver/DES/cache paths; derive times from the "
                "simulation clock or seeded config (observability spans "
                "in repro.obs are the allowlisted exception)")
        self.generic_visit(node)
