"""RL030 good: dimensions align; unit conversion is explicit."""

from repro.units import delta_t_for_power


def headroom_c(t_in_c: float, limit_c: float) -> float:
    return limit_c - t_in_c


def outlet_c(t_in_c: float, node_kw: float, flow_m3s: float) -> float:
    rise_c = delta_t_for_power(node_kw, flow_m3s)
    return t_in_c + rise_c
