"""Tests for repro.io — JSON persistence round trips."""

import numpy as np
import pytest

from repro.io import (assignment_to_dict, datacenter_from_dict,
                      datacenter_to_dict, load_json, node_type_from_dict,
                      node_type_to_dict, save_json, workload_from_dict,
                      workload_to_dict)


class TestWorkloadRoundTrip:
    def test_exact(self, small_workload):
        doc = workload_to_dict(small_workload)
        back = workload_from_dict(doc)
        np.testing.assert_array_equal(back.ecs, small_workload.ecs)
        np.testing.assert_array_equal(back.rewards, small_workload.rewards)
        np.testing.assert_array_equal(back.deadline_slack,
                                      small_workload.deadline_slack)
        np.testing.assert_array_equal(back.arrival_rates,
                                      small_workload.arrival_rates)

    def test_kind_check(self, small_workload):
        doc = workload_to_dict(small_workload)
        doc["kind"] = "datacenter"
        with pytest.raises(ValueError, match="workload"):
            workload_from_dict(doc)

    def test_version_check(self, small_workload):
        doc = workload_to_dict(small_workload)
        doc["format"] = 99
        with pytest.raises(ValueError, match="format"):
            workload_from_dict(doc)

    def test_corrupted_data_fails_validation(self, small_workload):
        doc = workload_to_dict(small_workload)
        doc["rewards"] = [-1.0] * small_workload.n_task_types
        with pytest.raises(ValueError):
            workload_from_dict(doc)


class TestNodeTypeRoundTrip:
    def test_exact(self, small_dc):
        for spec in small_dc.node_types:
            back = node_type_from_dict(node_type_to_dict(spec))
            assert back == spec


class TestDataCenterRoundTrip:
    def test_geometry(self, small_dc):
        back = datacenter_from_dict(datacenter_to_dict(small_dc))
        assert back.n_nodes == small_dc.n_nodes
        assert back.n_crac == small_dc.n_crac
        assert back.n_cores == small_dc.n_cores
        np.testing.assert_array_equal(back.node_type_index,
                                      small_dc.node_type_index)
        np.testing.assert_allclose(back.crac_flows, small_dc.crac_flows)
        assert [n.label for n in back.nodes] \
            == [n.label for n in small_dc.nodes]

    def test_thermal_model_preserved(self, small_dc):
        back = datacenter_from_dict(datacenter_to_dict(small_dc))
        assert back.thermal is not None
        np.testing.assert_allclose(back.thermal.mix, small_dc.thermal.mix,
                                   atol=1e-12)
        # behaviorally identical steady states
        p = np.linspace(0.4, 0.8, small_dc.n_nodes)
        t = np.full(small_dc.n_crac, 15.0)
        np.testing.assert_allclose(
            back.thermal.steady_state(t, p).t_in,
            small_dc.thermal.steady_state(t, p).t_in, atol=1e-9)

    def test_without_thermal(self, small_dc):
        doc = datacenter_to_dict(small_dc)
        doc["alpha"] = None
        back = datacenter_from_dict(doc)
        assert back.thermal is None

    def test_bad_type_index_rejected(self, small_dc):
        doc = datacenter_to_dict(small_dc)
        doc["type_index"][0] = 99
        with pytest.raises(ValueError, match="type_index"):
            datacenter_from_dict(doc)

    def test_assignment_still_works_on_loaded_room(self, scenario):
        """A loaded room supports the full pipeline."""
        from repro.core import three_stage_assignment

        doc = datacenter_to_dict(scenario.datacenter)
        back = datacenter_from_dict(doc)
        res = three_stage_assignment(back, scenario.workload,
                                     scenario.p_const, psi=50.0)
        res.verify(back, scenario.p_const)
        assert res.reward_rate > 0


class TestAssignmentAndFiles:
    def test_assignment_document(self, assignment):
        doc = assignment_to_dict(assignment.t_crac_out, assignment.pstates,
                                 assignment.tc, assignment.reward_rate,
                                 extra={"psi": assignment.psi})
        assert doc["kind"] == "assignment"
        assert doc["extra"]["psi"] == assignment.psi
        np.testing.assert_array_equal(np.asarray(doc["pstates"]),
                                      assignment.pstates)

    def test_file_round_trip(self, tmp_path, small_workload):
        path = tmp_path / "wl.json"
        save_json(workload_to_dict(small_workload), path)
        back = workload_from_dict(load_json(path))
        np.testing.assert_array_equal(back.ecs, small_workload.ecs)
