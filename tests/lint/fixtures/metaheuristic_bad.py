"""Metaheuristic anti-pattern: an unseeded search loop.

An unseeded RNG makes the search a function of process state instead of
``(request, seed, budget)`` — results drift across runs, machines and
``--jobs`` values, which is exactly what the solver-backend contract
forbids.  RL003 flags both the unseeded generator and the stdlib
fallback draw.
"""

import random

import numpy as np


def anneal(evaluate, mutate, start, max_evals):
    rng = np.random.default_rng()        # line 16: unseeded generator
    best = start
    for _ in range(max_evals):
        cand = mutate(best, rng)
        if evaluate(cand) > evaluate(best) or random.random() < 0.01:
            best = cand                  # stdlib global RNG on line 20
    return best
