"""Redline constraint helpers (Eq. 6) shared by the optimizers.

Both the paper's three-stage technique and the baseline express the
thermal constraint ``T_in <= T_redline`` as linear rows over the node
power variables once the CRAC outlet temperatures are fixed.  This
module packages that affine view, plus the linearized CRAC power needed
for the total-power constraint (Eqs. 2-3 with inlet temperatures affine
in node powers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power.cop import CoPModel, HP_UTILITY_COP
from repro.thermal.heatflow import HeatFlowModel

__all__ = ["ThermalLinearization"]


@dataclass(frozen=True)
class ThermalLinearization:
    """Linear view of the thermal coupling at fixed CRAC outlets.

    For assigned CRAC outlet temperatures ``t`` every quantity the LPs
    need is affine in the node power vector ``P``:

    * inlet temperatures:  ``T_in = inlet_const + inlet_gain @ P``
    * CRAC electric power: ``P_crac_total = crac_const + crac_coeff @ P``
      (valid while each CRAC actually removes heat, i.e. its inlet is
      above its outlet; the builder records the constant so callers can
      verify the assumption at the solution).

    Attributes
    ----------
    t_crac_out:
        The outlet temperatures the linearization was built at.
    inlet_const, inlet_gain:
        Affine inlet map (units ordered CRACs first).
    redline_rhs:
        ``T_redline - inlet_const`` — right-hand side for the rows
        ``inlet_gain @ P <= redline_rhs``.
    crac_const, crac_coeff:
        Affine total CRAC electric power, kW.
    """

    t_crac_out: np.ndarray
    inlet_const: np.ndarray
    inlet_gain: np.ndarray
    redline_rhs: np.ndarray
    crac_const: float
    crac_coeff: np.ndarray

    @classmethod
    def build(cls, model: HeatFlowModel, t_crac_out: np.ndarray,
              redline_c: np.ndarray,
              cop_model: CoPModel = HP_UTILITY_COP) -> "ThermalLinearization":
        """Construct the linearization for one outlet-temperature vector.

        The total CRAC power is ``sum_i rho*Cp*F_i*(T_in_i - t_i)/CoP(t_i)``
        with ``T_in_i`` affine in ``P``; collecting terms gives the
        ``crac_const``/``crac_coeff`` pair.
        """
        t = np.asarray(t_crac_out, dtype=float)
        const, gain = model.inlet_affine(t)
        redline = np.asarray(redline_c, dtype=float)
        if redline.shape != const.shape:
            raise ValueError(
                f"redline shape {redline.shape} != unit count {const.shape}")
        cop = np.asarray(cop_model(t), dtype=float)
        weight = model.crac_capacity / cop          # kW per Kelvin of lift
        crac_const = float(weight @ (const[:model.n_crac] - t))
        crac_coeff = weight @ gain[:model.n_crac, :]
        return cls(
            t_crac_out=t,
            inlet_const=const,
            inlet_gain=gain,
            redline_rhs=redline - const,
            crac_const=crac_const,
            crac_coeff=crac_coeff,
        )

    @property
    def n_nodes(self) -> int:
        return int(self.inlet_gain.shape[1])

    def crac_power(self, node_power_kw: np.ndarray) -> float:
        """Total CRAC electric power at ``P`` under the linear model, kW."""
        p = np.asarray(node_power_kw, dtype=float)
        return self.crac_const + float(self.crac_coeff @ p)

    def inlet_temperatures(self, node_power_kw: np.ndarray) -> np.ndarray:
        """``T_in`` at ``P`` (CRACs first), C."""
        p = np.asarray(node_power_kw, dtype=float)
        return self.inlet_const + self.inlet_gain @ p

    def check(self, node_power_kw: np.ndarray, tol: float = 1e-6) -> bool:
        """Verify redlines *and* the no-clamping assumption at ``P``."""
        p = np.asarray(node_power_kw, dtype=float)
        t_in = self.inlet_temperatures(p)
        if np.any(self.inlet_gain @ p > self.redline_rhs + tol):
            return False
        # heat removed must be non-negative at every CRAC for the
        # linearized power to equal Eq. 3
        return bool(np.all(t_in[:self.t_crac_out.size]
                           >= self.t_crac_out - tol))
