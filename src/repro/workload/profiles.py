"""Non-stationary arrival profiles (diurnal load, drift, surges).

The paper fixes arrival rates for the lifetime of an assignment ("Once
the arrival rate for a task type is assigned, it remains constant") and
notes re-running the first step when conditions change is how the
technique would be deployed.  This module supplies the missing workload
side of that deployment story: time-varying arrival-rate profiles and a
non-homogeneous Poisson trace generator (standard thinning algorithm),
consumed by :mod:`repro.core.controller`'s epoch-based re-assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.workload.tasktypes import Workload
from repro.workload.trace import Task

__all__ = ["ArrivalProfile", "ConstantProfile", "DiurnalProfile",
           "StepProfile", "generate_nonstationary_trace"]


class ArrivalProfile(Protocol):
    """Time-varying arrival rates, one per task type."""

    def rates(self, t: float) -> np.ndarray:
        """Arrival-rate vector (tasks/s per type) at time ``t``."""
        ...

    def max_rates(self) -> np.ndarray:
        """Upper bound of :meth:`rates` over all ``t`` (for thinning)."""
        ...


@dataclass(frozen=True)
class ConstantProfile:
    """The paper's stationary workload, as a profile."""

    base_rates: np.ndarray

    def rates(self, t: float) -> np.ndarray:
        return self.base_rates

    def max_rates(self) -> np.ndarray:
        return self.base_rates


@dataclass(frozen=True)
class DiurnalProfile:
    """Sinusoidal day/night modulation around the base rates.

    ``rates(t) = base * (1 + amplitude * sin(2 pi (t - phase) / period))``

    Attributes
    ----------
    base_rates:
        Mean rates (the paper's ``lambda_i``).
    amplitude:
        Relative swing in [0, 1); 0.5 means day peaks at 150% of mean.
    period_s / phase_s:
        Cycle length and offset, seconds.
    """

    base_rates: np.ndarray
    amplitude: float = 0.5
    period_s: float = 86_400.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}")
        if self.period_s <= 0:
            raise ValueError("period must be positive")

    def rates(self, t: float) -> np.ndarray:
        factor = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * (t - self.phase_s) / self.period_s)
        return self.base_rates * factor

    def max_rates(self) -> np.ndarray:
        return self.base_rates * (1.0 + self.amplitude)


@dataclass(frozen=True)
class StepProfile:
    """Piecewise-constant rates — load surges / regime changes.

    ``boundaries`` are the instants where the rate vector switches to the
    next row of ``rate_levels``; level ``k`` applies on
    ``[boundaries[k-1], boundaries[k])`` with ``boundaries[-1] = inf``.
    """

    boundaries: np.ndarray
    rate_levels: np.ndarray   # (n_levels, T)

    def __post_init__(self) -> None:
        b = np.asarray(self.boundaries, dtype=float)
        levels = np.asarray(self.rate_levels, dtype=float)
        if levels.ndim != 2:
            raise ValueError("rate_levels must be (n_levels, T)")
        if b.size != levels.shape[0] - 1:
            raise ValueError(
                "need exactly one boundary between consecutive levels")
        if b.size and not np.all(np.diff(b) > 0):
            raise ValueError("boundaries must be strictly increasing")
        if np.any(levels < 0):
            raise ValueError("rates must be non-negative")

    def rates(self, t: float) -> np.ndarray:
        level = int(np.searchsorted(np.asarray(self.boundaries), t,
                                    side="right"))
        return np.asarray(self.rate_levels)[level]

    def max_rates(self) -> np.ndarray:
        return np.asarray(self.rate_levels).max(axis=0)


def generate_nonstationary_trace(workload: Workload,
                                 profile: ArrivalProfile,
                                 duration: float,
                                 rng: np.random.Generator) -> list[Task]:
    """Sample a non-homogeneous Poisson trace by thinning (Lewis-Shedler).

    For each task type, candidate arrivals are drawn at the profile's
    maximum rate and kept with probability ``rates(t) / max_rate`` — the
    standard exact algorithm for inhomogeneous Poisson processes.
    Deadlines use the workload's per-type slack as in the stationary
    generator.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    max_rates = np.asarray(profile.max_rates(), dtype=float)
    if max_rates.shape != (workload.n_task_types,):
        raise ValueError("profile dimension does not match workload")
    arrivals: list[tuple[float, int]] = []
    for i, rate_max in enumerate(max_rates):
        if rate_max <= 0:
            continue
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate_max)
            if t >= duration:
                break
            accept = profile.rates(t)[i] / rate_max
            if rng.uniform() <= accept:
                arrivals.append((t, i))
    arrivals.sort()
    slack = workload.deadline_slack
    return [Task(arrival=t, task_type=i, uid=uid,
                 deadline=t + float(slack[i]))
            for uid, (t, i) in enumerate(arrivals)]
