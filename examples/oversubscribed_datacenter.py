#!/usr/bin/env python
"""The paper's headline comparison on one oversubscribed room.

Generates a Section VI scenario (paper set 3: 20% static power,
V_prop = 0.3 — the configuration where data-center-level P-state
assignment helps most), runs both techniques under the same power cap
and thermal model, and explains *where* the improvement comes from by
showing the P-state mix each technique chose.

Run:  python examples/oversubscribed_datacenter.py [n_nodes] [seed]
"""

import sys

import numpy as np

from repro.core import best_psi_assignment, solve_baseline
from repro.experiments import PAPER_SET_3, generate_scenario, scaled_down


def pstate_mix(pstates: np.ndarray, eta: int) -> str:
    hist = np.bincount(pstates, minlength=eta)
    parts = [f"P{k}:{hist[k]}" for k in range(eta - 1)]
    parts.append(f"off:{hist[eta - 1]}")
    return "  ".join(parts)


def main(n_nodes: int = 50, seed: int = 7) -> None:
    config = scaled_down(PAPER_SET_3, n_nodes)
    print(f"generating scenario ({n_nodes} nodes, seed {seed}, "
          f"static {config.static_fraction:.0%}, V_prop {config.v_prop}) ...")
    scenario = generate_scenario(config, seed)
    dc, wl = scenario.datacenter, scenario.workload
    p_const = scenario.p_const
    print(f"power cap {p_const:.1f} kW "
          f"(idle {scenario.bounds.p_min:.1f}, flat-out "
          f"{scenario.bounds.p_max:.1f})\n")

    best, by_psi = best_psi_assignment(dc, wl, p_const, psis=(25.0, 50.0))
    baseline, _ = solve_baseline(dc, wl, p_const)

    eta = dc.node_types[0].n_pstates
    print("three-stage (this paper):")
    for psi, res in sorted(by_psi.items()):
        print(f"  psi={psi:>4g}: reward {res.reward_rate:8.1f}/s   "
              f"CRAC outlets {res.t_crac_out} C")
        print(f"            P-state mix: {pstate_mix(res.pstates, eta)}")
    print("baseline (P0-or-off, adapted from Parolini et al.):")
    print(f"            reward {baseline.reward_rate:8.1f}/s   "
          f"CRAC outlets {baseline.t_crac_out} C")
    print(f"            P-state mix: {pstate_mix(baseline.pstates, eta)}")

    imp = 100.0 * (best.reward_rate - baseline.reward_rate) \
        / baseline.reward_rate
    print(f"\nimprovement of best-psi over baseline: {imp:+.2f}%")
    print("the gain comes from intermediate P-states: under a power cap,"
          "\nmany cores at P1/P2 out-earn fewer cores at P0 whenever P0 is"
          "\nnot the best reward-per-watt state.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    main(n, s)
