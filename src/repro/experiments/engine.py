"""Parallel, resumable execution engine for the Figure 6 experiment.

The headline experiment is embarrassingly parallel — every run is a pure
function of ``(ScenarioConfig, seed)`` — but the original runner solved
its 25 scenarios per set strictly serially and aborted the whole set on
the first failure.  This engine adds the three things every large sweep
needs, without changing a single number:

* **Workers** — runs fan out over a ``ProcessPoolExecutor``
  (:class:`EngineConfig.jobs`).  Each worker recomputes its scenario
  from ``(config, seed)``, so results are bit-identical to the serial
  path regardless of scheduling order.
* **Caching / resume** — each finished run is written to
  ``cache_dir`` as JSON keyed on ``(ScenarioConfig, seed, ψ-set,
  code_version)``; with ``resume=True`` a second invocation replays
  cached runs instead of recomputing them, so interrupted sweeps pick
  up where they stopped.
* **Fault tolerance** — a retry-with-backoff wrapper distinguishes
  deterministic failures (``InfeasibleError``, verification errors)
  from transient ones, and records failures as
  :class:`~repro.experiments.runner.RunFailure` entries in the
  :class:`~repro.experiments.runner.SetResult` instead of crashing the
  set.  Zero-reward baselines are recorded as *degenerate* runs.

Every run outcome — computed, cached or failed — is reported as a
structured :class:`~repro.experiments.progress.RunEvent`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from functools import partial
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro import kernels, obs
from repro.experiments.config import ScenarioConfig
from repro.experiments.generator import generate_scenario
from repro.experiments.progress import ProgressReporter, RunEvent
from repro.experiments.runner import (RunFailure, RunResult, SetResult,
                                      run_comparison)
from repro.obs import metrics as obs_metrics

__all__ = ["EngineConfig", "EngineError", "run_set", "run_sets",
           "parallel_map", "cache_key", "cache_path", "canonical_json",
           "code_version", "load_point", "store_point",
           "CACHE_SCHEMA_VERSION"]

#: Bump when the cached payload layout (or run semantics) changes; old
#: cache entries are then ignored rather than misread.  2: cache keys
#: carry the active numeric kernel (see :mod:`repro.kernels`).
#: 3: ``solve()`` returns :class:`~repro.core.api.SolveResult` and the
#: solvers grew warm-start reuse paths.
#: 4: scenario configs carry the solver backend + its budget knobs
#: (``backend`` / ``backend_seed`` / ``max_evals``), splitting cached
#: points per backend exactly like the kernel treatment.
#: 5: scenario configs carry ``thermal_backend`` (dense vs. sparse
#: heat-flow algebra agree only within float tolerance, so their cached
#: points must not be mixed).
CACHE_SCHEMA_VERSION = 5

#: Exceptions that are deterministic for a given ``(config, seed)`` —
#: retrying cannot help, so they fail fast (but are still recorded).
_NON_RETRYABLE = (ValueError, TypeError, ArithmeticError, AssertionError,
                  RuntimeError)


class EngineError(RuntimeError):
    """Too few valid runs survived to aggregate a simulation set."""


@dataclass(frozen=True)
class EngineConfig:
    """How to execute a sweep.

    Attributes
    ----------
    jobs:
        Worker processes; ``1`` keeps everything in-process (bit-identical
        either way, the pool only changes wall-clock time).
    cache_dir:
        Directory for per-run JSON results; ``None`` disables caching.
    resume:
        Consult the cache before computing.  Writes happen whenever
        ``cache_dir`` is set, so a first (non-resume) invocation
        populates the cache a later ``resume=True`` invocation replays.
    retries:
        Extra attempts for *transient* failures (deterministic solver
        errors fail fast).
    backoff_s:
        Base of the exponential retry backoff.
    """

    jobs: int = 1
    cache_dir: str | Path | None = None
    resume: bool = False
    retries: int = 1
    backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")


def code_version() -> str:
    """Version string baked into cache keys (package + schema)."""
    import repro

    return f"{repro.__version__}+cache{CACHE_SCHEMA_VERSION}"


def _canonicalize(value):
    """Recursively rewrite ``value`` into a canonical JSON-able form.

    Unordered collections (``set``/``frozenset``) are sorted by their
    members' canonical JSON encoding — the old ``default=list`` fallback
    serialized them in iteration order, which varies with
    ``PYTHONHASHSEED``, silently splitting the cache across processes.
    Unknown types raise instead of being coerced, so a new unhashed
    field in :class:`ScenarioConfig` is a loud error, not a wrong key.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(
                    f"cache-key dict keys must be str, got {type(k).__name__}")
            out[k] = _canonicalize(v)
        return out
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        members = [_canonicalize(v) for v in value]
        return sorted(members, key=lambda m: json.dumps(m, sort_keys=True))
    raise TypeError(
        f"cannot canonicalize {type(value).__name__} for a cache key")


def canonical_json(payload) -> str:
    """Deterministic JSON encoding for cache keys.

    Stable across processes and ``PYTHONHASHSEED`` values: dict keys are
    sorted, sets are sorted by member encoding, and types without a
    canonical form raise ``TypeError``.
    """
    return json.dumps(_canonicalize(payload), sort_keys=True)


def cache_key(config: ScenarioConfig, seed: int) -> str:
    """Digest of everything that determines one run's result.

    Includes the active numeric kernel: the kernels agree within
    tolerance, not necessarily bit-for-bit, so runs computed under
    different kernels never share a cache entry.
    """
    payload = {
        "code_version": code_version(),
        "config": asdict(config),
        "kernel": kernels.active_name(),
        "seed": int(seed),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def cache_path(cache_dir: str | Path, config: ScenarioConfig,
               seed: int) -> Path:
    """Readable-but-unique cache file for one run."""
    digest = cache_key(config, seed)
    return Path(cache_dir) / f"{config.name}-seed{seed}-{digest[:16]}.json"


def _load_cached(cache_dir: Path, config: ScenarioConfig,
                 seed: int) -> dict | None:
    path = cache_path(cache_dir, config, seed)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("schema") != CACHE_SCHEMA_VERSION \
            or payload.get("code_version") != code_version():
        return None
    if payload.get("status") not in ("ok", "failed"):
        return None
    return payload


def _store_cached(cache_dir: Path, config: ScenarioConfig, seed: int,
                  payload: dict) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_path(cache_dir, config, seed)
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def _point_path(cache_dir: str | Path, tag: str, extra: dict) -> Path:
    blob = canonical_json({"code_version": code_version(),
                           "kernel": kernels.active_name(), "tag": tag,
                           "extra": extra})
    digest = hashlib.sha256(blob.encode()).hexdigest()
    return Path(cache_dir) / f"{tag}-{digest[:16]}.json"


def load_point(cache_dir: str | Path, tag: str, extra: dict) -> dict | None:
    """Load one generic cached datum (used by the sweep drivers).

    ``tag`` names the problem instance (room/seed), ``extra`` the point
    within it (cap, ψ, …); both are folded into the key together with
    :func:`code_version`.
    """
    path = _point_path(cache_dir, tag, extra)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if payload.get("schema") != CACHE_SCHEMA_VERSION:
        return None
    return payload


def store_point(cache_dir: str | Path, tag: str, extra: dict,
                data: dict) -> None:
    """Persist one generic cached datum (counterpart of :func:`load_point`)."""
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = _point_path(directory, tag, extra)
    payload = dict(data)
    payload["schema"] = CACHE_SCHEMA_VERSION
    tmp = path.with_suffix(f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


@dataclass(frozen=True)
class _Outcome:
    """Picklable result of one executed run (success or failure)."""

    seed: int
    status: str                 # "ok" | "failed"
    run: dict | None            # RunResult.to_dict()
    failure: dict | None        # RunFailure.to_dict()
    wall_time_s: float
    worker_pid: int
    obs: dict | None = None     # spans + metrics snapshot (traced runs)

    def payload(self, config: ScenarioConfig) -> dict:
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": code_version(),
            "set": config.name,
            "seed": self.seed,
            "status": self.status,
            "run": self.run,
            "failure": self.failure,
            "wall_time_s": self.wall_time_s,
            "obs": self.obs,
        }


def _execute_comparison(config: ScenarioConfig, seed: int,
                        retries: int = 1, backoff_s: float = 0.05,
                        trace: bool = False,
                        kernel: str | None = None) -> _Outcome:
    """One run with retry/backoff; never raises (failures are data).

    Top-level so :class:`ProcessPoolExecutor` can pickle it.  With
    ``trace=True`` the run executes inside :func:`repro.obs.capture`
    (fresh isolated span/metric state, inline or in a worker alike) and
    the outcome carries the picklable snapshot for the parent to merge.
    ``kernel`` re-selects the parent's numeric kernel inside pool
    workers, where the process-wide selection does not carry over.
    """
    with kernels.use_kernel(kernel):
        if not trace:
            return _execute_comparison_body(config, seed, retries, backoff_s)
        with obs.capture() as snapshot:
            outcome = _execute_comparison_body(config, seed, retries,
                                               backoff_s)
    return _Outcome(seed=outcome.seed, status=outcome.status,
                    run=outcome.run, failure=outcome.failure,
                    wall_time_s=outcome.wall_time_s,
                    worker_pid=outcome.worker_pid, obs=snapshot())


def _execute_comparison_body(config: ScenarioConfig, seed: int,
                             retries: int, backoff_s: float) -> _Outcome:
    t0 = time.perf_counter()
    attempts = 0
    p_const: float | None = None
    while True:
        attempts += 1
        try:
            scenario = generate_scenario(config, seed)
            p_const = scenario.p_const
            run = run_comparison(scenario)
            return _Outcome(seed=seed, status="ok", run=run.to_dict(),
                            failure=None,
                            wall_time_s=time.perf_counter() - t0,
                            worker_pid=os.getpid())
        except _NON_RETRYABLE as exc:
            error = exc
            break
        # the one deliberate broad catch: transient failures (I/O,
        # memory pressure, ...) are retried and then recorded as data
        except Exception as exc:  # repro-lint: disable=RL020
            error = exc
            if attempts > retries:
                break
            time.sleep(backoff_s * (2 ** (attempts - 1)))
    failure = RunFailure(seed=seed, error_type=type(error).__name__,
                         message=str(error), attempts=attempts,
                         p_const=p_const)
    return _Outcome(seed=seed, status="failed", run=None,
                    failure=failure.to_dict(),
                    wall_time_s=time.perf_counter() - t0,
                    worker_pid=os.getpid())


def _event_for(config: ScenarioConfig, run_index: int, n_runs: int,
               payload: dict, *, source: str, worker: str,
               wall_time_s: float) -> RunEvent:
    if payload["status"] == "ok":
        run = RunResult.from_dict(payload["run"])
        if run.is_degenerate:
            status, detail = "degenerate", "baseline earned zero reward"
        else:
            status = "ok"
            detail = f"best improvement {run.improvement_pct(None):+.2f}%"
    else:
        status = "failed"
        fail = payload["failure"]
        detail = f"{fail['error_type']}: {fail['message']}"
    return RunEvent(set_name=config.name, run_index=run_index,
                    n_runs=n_runs, seed=int(payload["seed"]),
                    status=status, source=source, worker=worker,
                    wall_time_s=wall_time_s, detail=detail)


def run_set(config: ScenarioConfig, n_runs: int = 25,
            base_seed: int = 1000, *, engine: EngineConfig | None = None,
            reporter: ProgressReporter | None = None) -> SetResult:
    """Run one simulation set through the engine and aggregate.

    Seeds are ``base_seed + run_index`` — identical to the historical
    serial runner, so cached, serial and parallel executions all produce
    the same per-run numbers.

    Raises :class:`EngineError` when fewer than two runs remain valid
    after removing failures and degenerate runs.
    """
    engine = engine or EngineConfig()
    if n_runs < 2:
        raise ValueError("a simulation set needs at least two runs for CIs")
    trace = obs.enabled()
    cache_dir = Path(engine.cache_dir) if engine.cache_dir else None
    seeds = [base_seed + r for r in range(n_runs)]
    index_of = {seed: i for i, seed in enumerate(seeds)}
    payloads: dict[int, dict] = {}

    def finish(outcome: _Outcome) -> None:
        payload = outcome.payload(config)
        payloads[outcome.seed] = payload
        if cache_dir is not None:
            _store_cached(cache_dir, config, outcome.seed, payload)
        if reporter is not None:
            worker = "inline" if outcome.worker_pid == os.getpid() \
                else f"pid:{outcome.worker_pid}"
            reporter.emit(_event_for(
                config, index_of[outcome.seed], n_runs, payload,
                source="worker", worker=worker,
                wall_time_s=outcome.wall_time_s))

    pending: list[int] = []
    for seed in seeds:
        payload = _load_cached(cache_dir, config, seed) \
            if (cache_dir is not None and engine.resume) else None
        if payload is not None:
            payloads[seed] = payload
            obs_metrics.counter("engine.cache_hits").inc()
            if reporter is not None:
                reporter.emit(_event_for(
                    config, index_of[seed], n_runs, payload,
                    source="cache", worker="cache", wall_time_s=0.0))
        else:
            pending.append(seed)
    obs_metrics.counter("engine.runs_computed").inc(len(pending))

    kernel = kernels.active_name()
    if engine.jobs > 1 and len(pending) > 1:
        workers = min(engine.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_comparison, config, seed,
                                   engine.retries, engine.backoff_s, trace,
                                   kernel)
                       for seed in pending]
            for future in as_completed(futures):
                finish(future.result())
    else:
        for seed in pending:
            finish(_execute_comparison(config, seed, engine.retries,
                                       engine.backoff_s, trace, kernel))

    runs: list[RunResult] = []
    degenerate: list[RunResult] = []
    failures: list[RunFailure] = []
    for seed in seeds:
        payload = payloads[seed]
        if trace and payload.get("obs"):
            # seed order fixes the merge order, so the profile tree's
            # structure is identical for every --jobs value (and for
            # cache replays, which stored the original run's snapshot)
            obs.merge_snapshot(payload["obs"])
        if payload["status"] == "ok":
            run = RunResult.from_dict(payload["run"])
            (degenerate if run.is_degenerate else runs).append(run)
        else:
            failures.append(RunFailure.from_dict(payload["failure"]))
    if len(runs) < 2:
        detail = "; ".join(
            f"seed {f.seed}: {f.error_type}: {f.message}" for f in failures)
        raise EngineError(
            f"set {config.name!r}: only {len(runs)} of {n_runs} runs valid "
            f"({len(degenerate)} degenerate, {len(failures)} failed"
            f"{': ' + detail if detail else ''})")
    return SetResult(config=config, runs=runs, degenerate=degenerate,
                     failures=failures)


def run_sets(configs: Sequence[ScenarioConfig], n_runs: int = 25,
             base_seed: int = 1000, *,
             engine: EngineConfig | None = None,
             reporter: ProgressReporter | None = None
             ) -> dict[str, SetResult]:
    """Run several simulation sets (the whole Figure 6 experiment)."""
    return {
        config.name: run_set(config, n_runs=n_runs, base_seed=base_seed,
                             engine=engine, reporter=reporter)
        for config in configs
    }


def _call_captured(fn: Callable, item) -> tuple:
    """Run ``fn(item)`` under :func:`repro.obs.capture`; picklable."""
    with obs.capture() as snapshot:
        result = fn(item)
    return result, snapshot()


def _call_with_kernel(kernel: str, fn: Callable, item):
    """Run ``fn(item)`` under the named kernel; picklable.

    Pool workers start on the default kernel — this re-selects the
    parent's choice before the work runs.
    """
    with kernels.use_kernel(kernel):
        return fn(item)


def parallel_map(fn: Callable, items: Iterable, *, jobs: int = 1) -> list:
    """Order-preserving map, optionally across worker processes.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` of one) when ``jobs > 1``.  Used by the sweep
    and benchmark drivers to ride the same pool as the engine.  Worker
    processes run under the caller's active numeric kernel.

    When tracing is enabled, each item runs inside its own capture and
    the snapshots merge back in *item* order — like the engine's
    seed-order merge, the resulting profile structure does not depend on
    ``jobs``.
    """
    items = list(items)
    worker_fn = partial(_call_with_kernel, kernels.active_name(), fn)
    if not obs.enabled():
        if jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            return list(pool.map(worker_fn, items))
    if jobs <= 1 or len(items) <= 1:
        pairs = [_call_captured(fn, item) for item in items]
    else:
        call = partial(_call_captured, worker_fn)
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            pairs = list(pool.map(call, items))
    results = []
    for result, snapshot in pairs:
        obs.merge_snapshot(snapshot)
        results.append(result)
    return results
