"""MPC under fault injection — safety dominance and graceful degradation.

The predictive controller rides the same fault-aware loop as the
interval policy (:mod:`repro.faults.policy`), so the two are directly
comparable on identical traces and fault timelines.  This suite pins
the two properties the PR's acceptance rests on:

* under a seeded fault schedule MPC never accumulates *more*
  redline-violation minutes than the reactive interval controller
  (prediction can only add margin, never remove it);
* on horizons where no feasible plan exists MPC degrades to shedding
  load — the run completes and accounts for every task, it never
  crashes.
"""

import numpy as np
import pytest

from repro.experiments import PAPER_SET_1, generate_scenario, scaled_down
from repro.faults.model import FaultEvent, FaultKind, FaultSchedule
from repro.faults.policy import FaultAwareController, ReactionPolicy
from repro.faults.schedule import demo_rates, generate_fault_schedule
from repro.workload import generate_trace

from tests.conftest import SEED

N_NODES = 6
HORIZON = 120.0
EPOCH_S = 30.0


@pytest.fixture(scope="module")
def sc():
    return generate_scenario(scaled_down(PAPER_SET_1, N_NODES), SEED)


@pytest.fixture(scope="module")
def trace(sc):
    return generate_trace(sc.workload, HORIZON,
                          np.random.default_rng(SEED + 1))


@pytest.fixture(scope="module")
def seeded_schedule(sc):
    rates = demo_rates(HORIZON, N_NODES, sc.datacenter.n_crac)
    return generate_fault_schedule(N_NODES, sc.datacenter.n_crac, HORIZON,
                                   rates, np.random.default_rng(SEED + 2))


def _run(sc, trace, schedule, controller):
    loop = FaultAwareController(
        sc.datacenter, sc.workload, sc.p_const,
        ReactionPolicy(controller=controller, epoch_s=EPOCH_S))
    return loop.run(trace, HORIZON, schedule)


class TestSafetyDominance:
    def test_mpc_violation_minutes_never_exceed_interval(
            self, sc, trace, seeded_schedule):
        assert len(seeded_schedule) > 0  # the draw actually has faults
        interval = _run(sc, trace, seeded_schedule, "interval")
        mpc = _run(sc, trace, seeded_schedule, "mpc")
        assert mpc.violation_minutes <= interval.violation_minutes + 1e-9

    def test_mpc_accounts_for_every_task(self, sc, trace, seeded_schedule):
        """The stranded-task bookkeeping stays closed under MPC: every
        arrival is completed, dropped, requeued, or still in flight at
        the horizon — the counters are consistent and non-negative."""
        result = _run(sc, trace, seeded_schedule, "mpc")
        completed = sum(int(iv.metrics.completed.sum())
                        for iv in result.intervals)
        assert result.tasks_lost >= 0 and result.tasks_requeued >= 0
        assert completed + result.tasks_lost <= \
            len(trace) + result.tasks_requeued
        assert completed > 0  # the run kept doing useful work

    def test_empty_schedule_matches_interval_bitwise(self, sc, trace):
        """No faults, constant rates: MPC's committed plans coincide
        with the reactive loop's (prediction finds nothing to fix)."""
        interval = _run(sc, trace, FaultSchedule.empty(), "interval")
        mpc = _run(sc, trace, FaultSchedule.empty(), "mpc")
        assert mpc.reward_rate == pytest.approx(interval.reward_rate)
        assert mpc.violation_minutes == interval.violation_minutes == 0.0
        assert [iv.plan_reward_rate for iv in mpc.intervals] \
            == pytest.approx([iv.plan_reward_rate
                              for iv in interval.intervals])


class TestGracefulDegradation:
    def test_infeasible_horizon_sheds_not_crashes(self, sc, trace):
        """A near-total power-cap drop leaves no feasible plan at any
        pre-cool or derate level; MPC sheds the affected intervals and
        the run still completes with full accounting."""
        schedule = FaultSchedule([
            FaultEvent(start_s=30.0, kind=FaultKind.POWER_CAP_DROP,
                       duration_s=60.0, magnitude=0.95)])
        result = _run(sc, trace, schedule, "mpc")
        assert result.shed_intervals >= 1
        shed_ivs = [iv for iv in result.intervals if iv.shed]
        for iv in shed_ivs:
            assert iv.plan_reward_rate == 0.0
            assert iv.metrics.total_reward == 0.0
        # recovery: the room comes back once the cap is restored
        assert result.intervals[-1].plan_reward_rate > 0.0

    def test_shed_intervals_counted_in_summary(self, sc, trace):
        schedule = FaultSchedule([
            FaultEvent(start_s=30.0, kind=FaultKind.POWER_CAP_DROP,
                       duration_s=60.0, magnitude=0.95)])
        result = _run(sc, trace, schedule, "mpc")
        doc = result.to_dict()
        assert doc["precools"] == result.precools
        assert doc["derates"] == result.derates
        assert sum(1 for iv in doc["intervals"] if iv["shed"]) \
            == result.shed_intervals
