"""Analytic queueing model of the second step (M/M/c approximation).

The first step plans *fluid* rates; the second step faces a stochastic
stream, and the gap between the two shows up as deadline drops in the
DES (Section V.C's scheduler drops any task it cannot finish in time).
This module predicts that gap analytically, which both explains the
simulation results and gives deployments a fast what-if tool.

Model: Stage 3 deliberately loads every serving core to utilization 1,
so a pure delay queue would predict unbounded waits.  The scheduler,
however, *drops* any task that cannot meet its deadline — deadline-based
admission control — which turns each core into a **loss system**: an
M/M/1/K queue whose capacity K_i is the number of queued tasks a type-i
arrival can tolerate ahead of it,

    K_i = 1 + floor((m_i - D_i) / E[S])         (in-service slot + buffer)

with E[S] the core's rate-weighted mean service time.  The served
fraction of type *i* is then ``1 - blocking(rho, K_i)`` with the classic
M/M/1/K blocking probability (``1/(K+1)`` at the rho = 1 operating point
Stage 3 produces).

The approximation is deliberately coarse — deterministic services,
heterogeneous per-type capacities applied to a shared queue, and the
scheduler's cross-core balancing are all simplified — but it captures
the first-order effect: types whose slack barely covers their execution
time drop hardest under Poisson burstiness, even though the fluid plan
serves them fully.  :func:`erlang_c` is also provided for pool-level
wait-probability diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.workload.tasktypes import Workload

__all__ = ["erlang_c", "mm1k_blocking", "ClassQueue", "predict_completion"]


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/c).

    ``offered_load`` is ``a = Lambda * E[S]`` in erlangs; the queue is
    unstable for ``a >= servers`` and the probability saturates at 1.
    Computed via the stable iterative Erlang-B recursion.
    """
    if servers <= 0:
        raise ValueError("need at least one server")
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if offered_load == 0.0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    # Erlang B by recursion, then convert to Erlang C
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def mm1k_blocking(rho: float, capacity: int) -> float:
    """M/M/1/K blocking probability.

    ``rho`` is the offered utilization, ``capacity`` the total number of
    tasks the system holds (in service + queued).  ``rho = 1`` gives the
    well-known ``1 / (capacity + 1)``.
    """
    if capacity <= 0:
        return 1.0
    if rho < 0:
        raise ValueError("utilization must be non-negative")
    if rho == 0.0:
        return 0.0
    if abs(rho - 1.0) < 1e-12:
        return 1.0 / (capacity + 1)
    return float((1.0 - rho) * rho ** capacity
                 / (1.0 - rho ** (capacity + 1)))


@dataclass(frozen=True)
class ClassQueue:
    """M/M/c view of one (node type, P-state) class pool.

    Attributes
    ----------
    node_type / pstate / servers:
        Identity and size of the pool.
    arrival_rate:
        Aggregate planned rate into the pool, tasks/s.
    mean_service_s:
        Rate-weighted mean service time across the types it serves.
    wait_probability:
        Erlang-C probability of queueing.
    """

    node_type: int
    pstate: int
    servers: int
    arrival_rate: float
    mean_service_s: float
    wait_probability: float

    @property
    def utilization(self) -> float:
        if self.servers == 0 or self.mean_service_s == 0.0:
            return 0.0
        return self.arrival_rate * self.mean_service_s / self.servers

    def on_time_probability(self, service_s: float, slack_s: float) -> float:
        """P(task with this service time is served by its deadline).

        Loss-system view (see module docstring): the per-core M/M/1/K
        served fraction with the type's deadline-derived capacity.
        """
        margin = slack_s - service_s
        if margin < 0:
            return 0.0
        if self.mean_service_s <= 0.0:
            return 1.0
        capacity = 1 + int(margin / self.mean_service_s)
        return 1.0 - mm1k_blocking(self.utilization, capacity)


def predict_completion(datacenter: DataCenter, workload: Workload,
                       pstates: np.ndarray, tc: np.ndarray
                       ) -> tuple[np.ndarray, list[ClassQueue]]:
    """Predict per-type on-time completion rates for a planned ``tc``.

    Returns ``(rates, pools)`` where ``rates[i]`` is the predicted
    tasks/s of type *i* completed by their deadlines (at most the
    planned rate) and ``pools`` describes each class queue.
    """
    pstates = np.asarray(pstates, dtype=int)
    tc = np.asarray(tc, dtype=float)
    t_count = workload.n_task_types
    if tc.shape != (t_count, datacenter.n_cores):
        raise ValueError("tc shape mismatch")
    eta = workload.n_pstates
    class_id = datacenter.core_type * eta + pstates
    present = np.unique(class_id)
    rates = np.zeros(t_count)
    pools: list[ClassQueue] = []
    for c in present:
        members = np.nonzero(class_id == c)[0]
        jtype, k = int(c // eta), int(c % eta)
        class_rate = tc[:, members].sum(axis=1)      # per type
        lam = float(class_rate.sum())
        if lam <= 0:
            continue
        service = np.zeros(t_count)
        ok = workload.ecs[:, jtype, k] > 0
        service[ok] = 1.0 / workload.ecs[ok, jtype, k]
        mean_s = float((class_rate * service).sum() / lam)
        offered = lam * mean_s
        pool = ClassQueue(
            node_type=jtype, pstate=k, servers=members.size,
            arrival_rate=lam, mean_service_s=mean_s,
            wait_probability=erlang_c(members.size, offered))
        pools.append(pool)
        for i in range(t_count):
            if class_rate[i] <= 0:
                continue
            p_on_time = pool.on_time_probability(
                float(service[i]), float(workload.deadline_slack[i]))
            rates[i] += class_rate[i] * p_on_time
    return rates, pools
