"""RL050 bad: a config field missing from its cache key."""

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioKnobs:  # repro-lint: cache-class(make_key)
    n_nodes: int
    p_const: float
    chaos: bool                 # line 11: never reaches make_key


def make_key(config: ScenarioKnobs) -> str:
    blob = f"{config.n_nodes}|{config.p_const}"
    return hashlib.sha256(blob.encode()).hexdigest()
