"""Tests for repro.core.exact — brute-force validation of the heuristic."""

import numpy as np
import pytest

from repro.core.exact import count_assignments, solve_exact
from repro.core.assignment import best_psi_assignment
from repro.datacenter import build_datacenter, power_bounds
from repro.datacenter.coretypes import shrunken_node_types
from repro.thermal import attach_thermal_model
from repro.workload import generate_workload


def tiny_room(seed: int, n_nodes: int = 3, cores: int = 2):
    rng = np.random.default_rng(seed)
    dc = build_datacenter(n_nodes=n_nodes, n_crac=2,
                          node_types=shrunken_node_types(cores), rng=rng,
                          nodes_per_rack=min(n_nodes, 5))
    attach_thermal_model(dc, rng=rng)
    wl = generate_workload(dc, rng, n_task_types=4)
    return dc, wl, power_bounds(dc).p_const


@pytest.fixture(scope="module")
def tiny():
    return tiny_room(0)


@pytest.fixture(scope="module")
def exact_solution(tiny):
    dc, wl, pc = tiny
    return solve_exact(dc, wl, pc, temp_step=2.0)


class TestEnumeration:
    def test_count_matches_multiset_formula(self, tiny):
        dc, _, _ = tiny
        # 3 nodes x C(2 + 5 - 1, 5 - 1) = 15 each
        assert count_assignments(dc) == 15 ** 3

    def test_refuses_large_rooms(self, small_dc, small_workload):
        with pytest.raises(ValueError, match="tiny rooms"):
            solve_exact(small_dc, small_workload, 30.0)

    def test_records_work_done(self, exact_solution):
        assert exact_solution.assignments_checked > 0
        # memoization means far fewer LP solves than checks
        assert exact_solution.lp_solves < exact_solution.assignments_checked


class TestOptimality:
    def test_exact_feasible(self, tiny, exact_solution):
        dc, _, pc = tiny
        from repro.datacenter.power import total_power

        node_power = dc.node_power_kw(exact_solution.pstates)
        assert dc.thermal.is_feasible(exact_solution.t_crac_out,
                                      node_power, dc.redline_c)
        assert total_power(dc, exact_solution.t_crac_out,
                           node_power).total <= pc + 1e-6

    def test_positive_reward(self, exact_solution):
        assert exact_solution.reward_rate > 0

    def test_heuristic_never_beats_exact_on_same_lattice(self, tiny):
        """With the heuristic restricted to the exact grid's lattice, its
        solutions are a subset of the enumeration, so exact dominates."""
        dc, wl, pc = tiny
        exact = solve_exact(dc, wl, pc, temp_step=1.0)
        from repro.core.stage1 import solve_stage1
        from repro.core.stage2 import solve_stage2
        from repro.core.stage3 import solve_stage3

        best_heur = -np.inf
        for psi in (25.0, 50.0, 100.0):
            s1, _ = solve_stage1(dc, wl, p_const=pc, psi=psi,
                                 final_step=1.0)
            s2 = solve_stage2(dc, s1)
            s3 = solve_stage3(dc, wl, s2.pstates)
            best_heur = max(best_heur, s3.reward_rate)
        assert best_heur <= exact.reward_rate + 1e-6

    @pytest.mark.parametrize("seed", [1, 3])
    def test_heuristic_close_to_exact(self, seed):
        """The paper's validation: on small problems the brute force
        'has shown no improvement' — our heuristic lands within a small
        gap of the true optimum (integer rounding hurts relatively more
        on 6-core rooms than on the paper's 40-node check)."""
        dc, wl, pc = tiny_room(seed)
        exact = solve_exact(dc, wl, pc, temp_step=2.0)
        best, _ = best_psi_assignment(dc, wl, pc,
                                      psis=(25.0, 50.0, 100.0))
        assert best.reward_rate >= 0.85 * exact.reward_rate

    def test_infeasible_cap_raises(self, tiny):
        dc, wl, _ = tiny
        with pytest.raises(RuntimeError, match="no feasible"):
            solve_exact(dc, wl, p_const=0.01, temp_step=5.0)
