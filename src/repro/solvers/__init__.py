"""Solver backend registry — pluggable first-step solvers behind ``solve()``.

:func:`repro.core.api.solve` historically dispatched through a private
module-level dict with exactly four entries.  This package turns that
dict into an open registry so new solver families (the seeded
metaheuristics in :mod:`repro.solvers.annealing` /
:mod:`repro.solvers.evolution`, external plug-ins, learned policies) can
compete on equal footing: a backend is any callable taking a
:class:`~repro.core.api.SolveRequest` and returning a
:class:`~repro.core.api.SolveResult`, registered under a unique name and
selected per request via ``SolveOptions.backend`` (default
``"three_stage"`` — bit-identical to the pre-registry dispatch).

The registry itself imports no backend modules at top level; the
built-in backends load lazily on first lookup.  ``repro.core.api``
registers the four classic methods as a side effect of its import, and
this module then pulls in the metaheuristic backends — breaking the
import cycle ``api -> solvers -> annealing -> api`` by construction.

Backend contract (see ``docs/SOLVERS.md``):

* pure in the request — no wall clock, no ambient RNG; all randomness
  flows from ``SolveOptions.seed`` and budgets are counted in
  *evaluations* (``SolveOptions.max_evals``), never seconds;
* the returned outcome satisfies the frozen
  :class:`~repro.core.api.SolveOutcome` protocol (``reward_rate``,
  ``verify``, ``to_dict``);
* the result must pass ``verify`` — backends repair infeasible
  candidates instead of returning them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.core.api import SolveRequest, SolveResult

__all__ = ["register_solver", "list_solvers", "get_solver"]

#: Name -> backend callable.  Populated by ``repro.core.api`` (builtin
#: methods) and the metaheuristic modules; open to external callers.
_REGISTRY: dict[str, "Callable[[SolveRequest], SolveResult]"] = {}

_BACKENDS_LOADED = False


def register_solver(name: str,
                    backend: "Callable[[SolveRequest], SolveResult]", *,
                    replace: bool = False
                    ) -> "Callable[[SolveRequest], SolveResult]":
    """Register ``backend`` under ``name``; returns ``backend``.

    Duplicate names raise unless ``replace=True`` (used by the built-in
    registrations so a module re-import stays idempotent).
    """
    if not name:
        raise ValueError("solver backend name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"solver backend {name!r} is already registered; pass "
            f"replace=True to override it")
    _REGISTRY[name] = backend
    return backend


def _ensure_backends_loaded() -> None:
    """Import every built-in backend module exactly once.

    ``repro.core.api`` registers the classic methods (``three_stage``,
    ``best_psi``, ``baseline``, ``exact``) when it imports; the
    metaheuristic modules register themselves the same way.
    """
    global _BACKENDS_LOADED
    if _BACKENDS_LOADED:
        return
    _BACKENDS_LOADED = True
    import repro.core.api  # noqa: F401  (registers the builtins)
    import repro.solvers.annealing  # noqa: F401
    import repro.solvers.evolution  # noqa: F401


def list_solvers() -> tuple[str, ...]:
    """Sorted names of every registered solver backend."""
    _ensure_backends_loaded()
    return tuple(sorted(_REGISTRY))


def get_solver(name: str) -> "Callable[[SolveRequest], SolveResult]":
    """Look up a backend by name (raises ``ValueError`` with choices)."""
    _ensure_backends_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {name!r}; choose from "
            f"{', '.join(sorted(_REGISTRY))}") from None
