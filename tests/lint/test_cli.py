"""CLI behavior: exit codes, formats, selection, error handling."""

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

FIXDIR = str(Path(__file__).parent / "fixtures")


def run(capsys, argv):
    code = lint_main(argv)
    out = capsys.readouterr()
    return code, out.out, out.err


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys, tmp_path):
        mod = tmp_path / "ok.py"
        mod.write_text("x = 1\n")
        code, out, _ = run(capsys, [str(mod), "--no-baseline"])
        assert code == 0
        assert "0 findings" in out

    @pytest.mark.parametrize("name", [
        "rl001_bad.py", "rl002_bad.py", "rl003_bad.py", "rl004_bad.py",
        "rl010_bad.py", "rl011_bad.py", "rl020_bad.py", "rl021_bad.py",
        "rl022_bad.py", "rl030_bad.py", "rl031_bad.py", "rl040_bad.py",
        "rl050_bad.py",
    ])
    def test_every_bad_fixture_fails(self, capsys, name):
        code, out, _ = run(capsys, [f"{FIXDIR}/{name}", "--no-baseline"])
        assert code == 1
        assert name.split("_")[0].upper() in out

    def test_unknown_rule_code_is_usage_error(self, capsys):
        code, _, err = run(capsys, [FIXDIR, "--select", "RL999",
                                    "--no-baseline"])
        assert code == 2
        assert "unknown rule code" in err

    def test_missing_path_is_usage_error(self, capsys):
        code, _, err = run(capsys, ["definitely/not/here",
                                    "--no-baseline"])
        assert code == 2

    def test_syntax_error_reported_as_rl000(self, capsys, tmp_path):
        mod = tmp_path / "broken.py"
        mod.write_text("def f(:\n")
        code, out, _ = run(capsys, [str(mod), "--no-baseline"])
        assert code == 1
        assert "RL000" in out


class TestFormats:
    def test_json_format_schema(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl004_bad.py",
                                    "--format", "json", "--no-baseline"])
        doc = json.loads(out)
        assert doc["schema"] == 2 and doc["ok"] is False
        assert [f["line"] for f in doc["findings"]
                if f["code"] == "RL004"] == [9, 10]

    def test_github_format_annotations(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl004_bad.py",
                                    "--format", "github", "--no-baseline"])
        lines = out.splitlines()
        assert any(line.startswith("::error file=") and "RL004" in line
                   for line in lines)

    def test_text_format_is_compiler_style(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl004_bad.py",
                                    "--no-baseline"])
        assert any(line.split(":")[1:3] == ["9", "9"] or ":9:" in line
                   for line in out.splitlines())


class TestSelection:
    def test_select_runs_only_that_rule(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl003_bad.py",
                                    "--select", "RL004", "--no-baseline"])
        assert code == 0          # file has RL003 sins, not RL004

    def test_ignore_drops_a_rule(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl004_bad.py",
                                    "--ignore", "RL004", "--no-baseline"])
        assert code == 0

    def test_list_rules(self, capsys):
        code, out, _ = run(capsys, ["--list-rules"])
        assert code == 0
        for expected in ("RL001", "RL011", "RL022"):
            assert expected in out


class TestWriteBaseline:
    def test_write_baseline_then_clean(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, out, _ = run(capsys, [f"{FIXDIR}/rl004_bad.py",
                                    "--baseline", str(baseline),
                                    "--write-baseline"])
        assert code == 0 and baseline.exists()
        code, out, _ = run(capsys, [f"{FIXDIR}/rl004_bad.py",
                                    "--baseline", str(baseline)])
        assert code == 0
        assert "2 baselined" in out


class TestAnalysisTiers:
    def test_ast_tier_skips_dataflow_rules(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl040_bad.py",
                                    "--select", "RL040",
                                    "--analysis", "ast", "--no-baseline"])
        assert code == 0
        assert "RL040" not in out

    def test_dataflow_tier_skips_ast_rules(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl004_bad.py",
                                    "--select", "RL004",
                                    "--analysis", "dataflow",
                                    "--no-baseline"])
        assert code == 0

    def test_all_tier_runs_both(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl040_bad.py",
                                    "--select", "RL004,RL040",
                                    "--analysis", "all", "--no-baseline"])
        assert code == 1
        assert "RL004" in out and "RL040" in out

    def test_trace_lines_in_text_output(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl040_bad.py",
                                    "--select", "RL040", "--no-baseline"])
        assert code == 1
        assert "    trace:" in out

    def test_trace_in_github_annotations(self, capsys):
        code, out, _ = run(capsys, [f"{FIXDIR}/rl040_bad.py",
                                    "--select", "RL040",
                                    "--format", "github", "--no-baseline"])
        assert any(line.startswith("::error") and "trace" in line
                   for line in out.splitlines())


class TestSince:
    @staticmethod
    def _git(cwd, *cmd):
        import subprocess
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t", *cmd],
            cwd=cwd, check=True, capture_output=True)

    def test_since_restricts_reported_files(self, capsys, tmp_path,
                                            monkeypatch):
        old = tmp_path / "old.py"
        new = tmp_path / "new.py"
        old.write_text("import time\nSTAMP = time.time()\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "old.py")
        self._git(tmp_path, "commit", "-qm", "seed")
        new.write_text("import time\nSTAMP = time.time()\n")
        monkeypatch.chdir(tmp_path)
        code, out, _ = run(capsys, [str(old), str(new),
                                    "--since", "HEAD", "--no-baseline"])
        assert code == 1
        assert "new.py" in out and "old.py" not in out
        assert "1 files checked" in out

    def test_since_bad_revision_is_usage_error(self, capsys, tmp_path,
                                               monkeypatch):
        mod = tmp_path / "ok.py"
        mod.write_text("x = 1\n")
        self._git(tmp_path, "init", "-q")
        monkeypatch.chdir(tmp_path)
        code, _, err = run(capsys, [str(mod), "--since", "nope",
                                    "--no-baseline"])
        assert code == 2
        assert "git" in err


class TestMainCliIntegration:
    def test_repro_lint_subcommand(self, capsys):
        code = repro_main(["lint", f"{FIXDIR}/rl004_bad.py",
                           "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL004" in out
