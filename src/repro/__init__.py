"""repro — thermal-aware performance optimization in power-constrained
heterogeneous data centers.

A from-scratch reproduction of Al-Qawasmeh, Pasricha, Maciejewski &
Siegel, "Thermal-Aware Performance Optimization in Power Constrained
Heterogeneous Data Centers" (IPDPSW 2012).

Quick tour
----------
>>> import numpy as np
>>> from repro import (build_datacenter, attach_thermal_model,
...                    generate_workload, power_bounds,
...                    three_stage_assignment, solve_baseline)
>>> rng = np.random.default_rng(0)
>>> dc = build_datacenter(n_nodes=30, n_crac=3, rng=rng)
>>> _ = attach_thermal_model(dc, rng=rng)
>>> wl = generate_workload(dc, rng)
>>> p_const = power_bounds(dc).p_const
>>> ours = three_stage_assignment(dc, wl, p_const, psi=50)
>>> base, _ = solve_baseline(dc, wl, p_const)
>>> ours.reward_rate >= 0 and base.reward_rate >= 0
True

Subpackages
-----------
``repro.core``
    The paper's contribution: three-stage assignment, dynamic scheduler,
    P0-or-off baseline.
``repro.datacenter`` / ``repro.thermal`` / ``repro.power`` /
``repro.workload``
    The substrates: room model, heat flow, CMOS/CRAC power, workloads.
``repro.simulate``
    Discrete-event replay of the second-step scheduler.
``repro.optimize``
    Piecewise-linear machinery, LP wrapper, temperature searches.
``repro.experiments``
    Scenario generator and the Figure 6 comparison runner.
"""

from repro.core import (AssignmentResult, BaselineSolution, DynamicScheduler,
                        best_psi_assignment, solve_baseline,
                        three_stage_assignment)
from repro.datacenter import (DataCenter, NodeTypeSpec, build_datacenter,
                              paper_node_types, power_bounds, total_power)
from repro.simulate import SimulationMetrics, simulate_trace
from repro.thermal import HeatFlowModel, attach_thermal_model, generate_alpha
from repro.workload import Task, Workload, generate_trace, generate_workload

__version__ = "1.0.0"

__all__ = [
    "AssignmentResult",
    "BaselineSolution",
    "DynamicScheduler",
    "best_psi_assignment",
    "solve_baseline",
    "three_stage_assignment",
    "DataCenter",
    "NodeTypeSpec",
    "build_datacenter",
    "paper_node_types",
    "power_bounds",
    "total_power",
    "SimulationMetrics",
    "simulate_trace",
    "HeatFlowModel",
    "attach_thermal_model",
    "generate_alpha",
    "Task",
    "Workload",
    "generate_trace",
    "generate_workload",
    "__version__",
]
