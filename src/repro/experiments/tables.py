"""Data behind the paper's tables (Table I and Table II).

Table I is *derived* — the P-state power ladder comes from the
Appendix A CMOS model — so regenerating it exercises
:mod:`repro.power.cmos` and :mod:`repro.datacenter.coretypes` and checks
them against the paper's printed values.
"""

from __future__ import annotations

import numpy as np

from repro.datacenter.coretypes import paper_node_types
from repro.datacenter.layout import RACK_LABELS, TABLE_II_RANGES
from repro.power.cmos import static_fraction as cmos_static_fraction

__all__ = ["table1_rows", "format_table1", "table2_rows", "format_table2",
           "pstate_static_percentages"]


def table1_rows(static_frac: float = 0.3) -> list[dict]:
    """Table I as a list of dicts, one per node type."""
    rows = []
    for i, spec in enumerate(paper_node_types(static_frac), start=1):
        rows.append({
            "node_type": i,
            "name": spec.name,
            "base_power_kw": spec.base_power_kw,
            "cores": spec.cores_per_node,
            "n_pstates": spec.n_active_pstates,
            "p0_power_kw": spec.p0_power_kw,
            "frequencies_mhz": spec.frequencies_mhz,
            "pstate_power_kw": spec.pstate_power_kw[:-1],
            "flow_m3s": spec.flow_m3s,
        })
    return rows


def format_table1(static_frac: float = 0.3) -> str:
    """Render Table I (plus the derived per-P-state powers)."""
    rows = table1_rows(static_frac)
    lines = ["Table I — parameters of the two node types "
             f"(P-state-0 static share {static_frac * 100:.0f}%)"]
    fields = [
        ("Base power (kW)", lambda r: f"{r['base_power_kw']:.3f}"),
        ("Number of cores", lambda r: str(r["cores"])),
        ("Number of P-states", lambda r: str(r["n_pstates"])),
        ("P-state 0 power (kW)", lambda r: f"{r['p0_power_kw']:.5f}"),
        ("P-state clocks (MHz)",
         lambda r: "/".join(f"{f:.0f}" for f in r["frequencies_mhz"])),
        ("P-state powers (kW)",
         lambda r: "/".join(f"{p:.5f}" for p in r["pstate_power_kw"])),
        ("Air flow (m^3/s)", lambda r: f"{r['flow_m3s']:.4f}"),
    ]
    header = f"{'parameter':<24}" + "".join(
        f"{'type ' + str(r['node_type']):>28}" for r in rows)
    lines.append(header)
    for label, fmt in fields:
        lines.append(f"{label:<24}" + "".join(f"{fmt(r):>28}" for r in rows))
    return "\n".join(lines)


def table2_rows() -> list[dict]:
    """Table II as a list of dicts, one per rack label."""
    return [
        {
            "label": label,
            "ec_min": TABLE_II_RANGES[label].ec_min,
            "ec_max": TABLE_II_RANGES[label].ec_max,
            "rc_min": TABLE_II_RANGES[label].rc_min,
            "rc_max": TABLE_II_RANGES[label].rc_max,
        }
        for label in RACK_LABELS
    ]


def format_table2() -> str:
    """Render Table II."""
    lines = ["Table II — EC and RC ranges per rack label",
             f"{'label':<8}{'EC range':>16}{'RC range':>16}"]
    for row in table2_rows():
        ec = f"{row['ec_min'] * 100:.0f}-{row['ec_max'] * 100:.0f}%"
        rc = f"{row['rc_min'] * 100:.0f}-{row['rc_max'] * 100:.0f}%"
        lines.append(f"{row['label']:<8}{ec:>16}{rc:>16}")
    return "\n".join(lines)


def pstate_static_percentages(static_frac: float = 0.3
                              ) -> dict[str, np.ndarray]:
    """Static power share per active P-state for each node type.

    These are the percentages annotated on Figure 6 ("The static power
    consumption percentage for the other P-states for each node type is
    also shown"): fixing the P-state-0 static share fixes the rest via
    the CMOS model, and slower P-states are *more* static-dominated.
    """
    out: dict[str, np.ndarray] = {}
    for spec in paper_node_types(static_frac):
        out[spec.name] = cmos_static_fraction(
            spec.p0_power_kw, static_frac,
            np.asarray(spec.frequencies_mhz), np.asarray(spec.voltages_v))
    return out
