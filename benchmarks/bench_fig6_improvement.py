"""Figure 6 — the headline result: % improvement over the baseline.

Runs the paper's three simulation sets (static 30%/V_prop 0.1,
static 30%/V_prop 0.3, static 20%/V_prop 0.3), each a collection of
random rooms, comparing the three-stage technique (psi = 25, psi = 50,
best-of) against the P0-or-off baseline under identical power caps and
thermal models, and prints the mean improvement with 95% confidence
intervals — the bars of Figure 6.

Shape expectations from the paper (absolute numbers depend on the
sampled rooms):
* all bars positive (the technique wins on average),
* set 2 > set 1 (higher V_prop -> more P-state/task affinity to exploit),
* set 3 > set 2 (lower static share -> P0 less dominant in reward/W),
* "best" >= each individual psi bar.

At REPRO_BENCH_SCALE=paper this is the full 25-run, 150-node experiment
(~20-30 minutes serial); the default small scale keeps the shape in
~2 minutes.  Set REPRO_BENCH_JOBS=N to fan runs out over the experiment
engine's process pool — per-run numbers are identical to the serial
path, only the wall clock changes.
"""

from repro.experiments import (ProgressReporter, fig6_data, format_fig6,
                               paper_sets, scaled_down)


def bench_fig6(benchmark, capsys, scale, engine_jobs):
    configs = [scaled_down(cfg, scale.n_nodes) for cfg in paper_sets()]
    reporter = ProgressReporter()

    def run():
        return fig6_data(n_runs=scale.n_runs, base_seed=1000,
                         configs=configs, jobs=engine_jobs,
                         reporter=reporter)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"engine: jobs={engine_jobs}, {reporter.summary()}")
        print(format_fig6(results))
        best_means = [results[c.name].intervals["best"].mean
                      for c in configs]
        print(f"\nshape check (paper: bars positive, set3 largest):")
        print(f"  set means: " + ", ".join(f"{m:+.2f}%" for m in best_means))

    # qualitative shape assertions
    for cfg in configs:
        assert results[cfg.name].intervals["best"].mean > 0.0
    # the best-of bar dominates single-psi bars by construction
    for cfg in configs:
        res = results[cfg.name]
        assert res.intervals["best"].mean >= max(
            res.intervals["psi=25"].mean,
            res.intervals["psi=50"].mean) - 1e-9
