"""Task arrival traces (Section III.B) for the dynamic scheduler.

The first-step optimization only needs arrival *rates*; the second-step
dynamic scheduler consumes an actual stream of tasks.  We model each task
type as an independent Poisson process with the workload's rate, the
standard model consistent with the paper's steady-state analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.tasktypes import Workload

__all__ = ["Task", "generate_trace"]


@dataclass(frozen=True, order=True)
class Task:
    """One task instance flowing through the data center.

    Ordered by arrival time so heaps/sorts work directly.

    Attributes
    ----------
    arrival:
        Arrival time, seconds.
    task_type:
        Index into the workload's task types.
    uid:
        Unique id (dense, per trace).
    deadline:
        ``arrival + m_i`` (Section III.B).
    """

    arrival: float
    task_type: int
    uid: int
    deadline: float


def generate_trace(workload: Workload, duration: float,
                   rng: np.random.Generator) -> list[Task]:
    """Sample a merged Poisson arrival trace over ``[0, duration)``.

    Tasks of type *i* arrive with exponential inter-arrival times of mean
    ``1 / lambda_i``; the per-type streams are merged and re-numbered in
    arrival order.  Types with zero rate produce no tasks.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    arrivals: list[tuple[float, int]] = []
    for i, rate in enumerate(workload.arrival_rates):
        if rate <= 0:
            continue
        # Expected count + 6 sigma headroom, then trim; resample the
        # rare shortfall instead of looping one-by-one in Python.
        n_expected = rate * duration
        n_draw = int(n_expected + 6.0 * np.sqrt(n_expected) + 10)
        while True:
            gaps = rng.exponential(1.0 / rate, size=n_draw)
            times = np.cumsum(gaps)
            if times[-1] >= duration:
                break
            n_draw *= 2
        times = times[times < duration]
        arrivals.extend((float(t), i) for t in times)
    arrivals.sort()
    slack = workload.deadline_slack
    return [Task(arrival=t, task_type=i, uid=uid, deadline=t + float(slack[i]))
            for uid, (t, i) in enumerate(arrivals)]
