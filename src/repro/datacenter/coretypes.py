"""Node/core type catalog (Table I and Appendix A of the paper).

A *node type* fixes everything about a compute node except its position
in the room: base (non-compute) power, number of identical cores, the
P-state table of those cores (frequencies, voltages, and the derived
per-core power of each P-state), the air flow rate through the chassis,
and a relative performance scale used by the ECS generator.

The two concrete node types of the paper's simulations are provided as
:func:`hp_proliant_dl785_g5` (AMD Opteron 8381 HE based) and
:func:`nec_express5800_a1080a(S)` (Intel Xeon X7560 based); both are
parameterized on the static power fraction, which the paper varies
between simulation sets (30% vs 20%).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.power.cmos import pstate_powers

__all__ = [
    "NodeTypeSpec",
    "shrunken_node_types",
    "hp_proliant_dl785_g5",
    "nec_express5800_a1080a",
    "paper_node_types",
]


@dataclass(frozen=True)
class NodeTypeSpec:
    """Immutable description of a compute node type.

    Attributes
    ----------
    name:
        Human-readable identifier.
    base_power_kw:
        ``B_j`` — power of non-compute devices (disks, fans, ...), drawn
        whenever the node is on, independent of core utilization
        (Section III.C).
    cores_per_node:
        Number of identical cores in the node.
    frequencies_mhz / voltages_v:
        Per *active* P-state operating points, index 0 = P-state 0.
    pstate_power_kw:
        Per-core power of each P-state *including* the trailing
        turned-off state (0 kW), so its length is ``n_pstates + 1``.
    flow_m3s:
        Air flow rate through the node, m^3/s.
    performance_scale:
        Relative mean ECS of this node type (Section VI.C fixes the
        type-1 : type-2 ratio at 0.6 : 1).
    static_fraction_p0:
        Static share of P-state-0 core power used to derive the P-state
        power table (0.3 or 0.2 in the paper's simulation sets).
    """

    name: str
    base_power_kw: float
    cores_per_node: int
    frequencies_mhz: tuple[float, ...]
    voltages_v: tuple[float, ...]
    pstate_power_kw: tuple[float, ...]
    flow_m3s: float
    performance_scale: float
    static_fraction_p0: float

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError(f"{self.name}: cores_per_node must be positive")
        if len(self.frequencies_mhz) != len(self.voltages_v):
            raise ValueError(f"{self.name}: frequency/voltage length mismatch")
        if len(self.pstate_power_kw) != len(self.frequencies_mhz) + 1:
            raise ValueError(
                f"{self.name}: pstate_power_kw must include the off state")
        if self.pstate_power_kw[-1] != 0.0:
            raise ValueError(f"{self.name}: the off P-state must consume 0 kW")
        if any(np.diff(self.pstate_power_kw) >= 0):
            raise ValueError(
                f"{self.name}: P-state powers must be strictly decreasing "
                f"(P0 highest), got {self.pstate_power_kw}")
        if self.flow_m3s <= 0:
            raise ValueError(f"{self.name}: air flow must be positive")

    # ------------------------------------------------------------------
    @property
    def n_active_pstates(self) -> int:
        """Number of P-states excluding the turned-off state (``eta - 1``)."""
        return len(self.frequencies_mhz)

    @property
    def n_pstates(self) -> int:
        """``eta_j`` — total P-states including the turned-off state."""
        return len(self.pstate_power_kw)

    @property
    def off_pstate(self) -> int:
        """Index of the turned-off P-state (the highest index)."""
        return self.n_pstates - 1

    @property
    def p0_power_kw(self) -> float:
        """Per-core power at P-state 0 (the most power-hungry state)."""
        return self.pstate_power_kw[0]

    @property
    def max_node_power_kw(self) -> float:
        """Node power with every core at P-state 0 (Eq. 1 upper bound)."""
        return self.base_power_kw + self.cores_per_node * self.p0_power_kw

    def core_power(self, pstate: int) -> float:
        """Per-core power of ``pstate`` with bounds checking."""
        if not 0 <= pstate < self.n_pstates:
            raise IndexError(
                f"{self.name}: P-state {pstate} out of range 0..{self.off_pstate}")
        return self.pstate_power_kw[pstate]

    def max_delta_t(self) -> float:
        """Largest possible air temperature rise across the node, C."""
        from repro.units import delta_t_for_power
        return delta_t_for_power(self.max_node_power_kw, self.flow_m3s)


def _make_spec(name: str, base_power_kw: float, cores: int,
               p0_power_kw: float, freqs: tuple[float, ...],
               volts: tuple[float, ...], flow: float, perf: float,
               static_fraction: float) -> NodeTypeSpec:
    powers = pstate_powers(p0_power_kw, static_fraction, freqs, volts,
                           include_off=True)
    return NodeTypeSpec(
        name=name,
        base_power_kw=base_power_kw,
        cores_per_node=cores,
        frequencies_mhz=freqs,
        voltages_v=volts,
        pstate_power_kw=tuple(float(p) for p in powers),
        flow_m3s=flow,
        performance_scale=perf,
        static_fraction_p0=static_fraction,
    )


def hp_proliant_dl785_g5(static_fraction: float = 0.3) -> NodeTypeSpec:
    """Node type 1: HP ProLiant DL785 G5 (8x AMD Opteron 8381 HE, 4 cores each).

    Parameters are from Table I / Appendix A: TDP-derived P-state-0 core
    power of 13.75 W, base power 0.353 kW, air flow 0.07 m^3/s, and the
    AMD datasheet frequency/voltage ladder.
    """
    return _make_spec(
        name="HP ProLiant DL785 G5",
        base_power_kw=0.353,
        cores=32,
        p0_power_kw=0.01375,
        freqs=(2500.0, 2100.0, 1700.0, 800.0),
        volts=(1.325, 1.25, 1.175, 1.025),
        flow=0.07,
        perf=0.6,
        static_fraction=static_fraction,
    )


def nec_express5800_a1080a(static_fraction: float = 0.3) -> NodeTypeSpec:
    """Node type 2: NEC Express5800/A1080a-S (4x Intel Xeon X7560, 8 cores each).

    P-state-0 voltage 1.35 V is based on the Intel Xeon E7540 with the
    same feature size (Appendix A); P-states 1-3 frequencies/voltages are
    the paper's assumed values.
    """
    return _make_spec(
        name="NEC Express5800/A1080a-S",
        base_power_kw=0.418,
        cores=32,
        p0_power_kw=0.01625,
        freqs=(2666.0, 2200.0, 1700.0, 1000.0),
        volts=(1.35, 1.268, 1.18, 1.056),
        flow=0.0828,
        perf=1.0,
        static_fraction=static_fraction,
    )


def paper_node_types(static_fraction: float = 0.3) -> list[NodeTypeSpec]:
    """The two node types of the paper's simulations (Table I order)."""
    return [hp_proliant_dl785_g5(static_fraction),
            nec_express5800_a1080a(static_fraction)]


def shrunken_node_types(cores_per_node: int,
                        static_fraction: float = 0.3
                        ) -> list[NodeTypeSpec]:
    """Table I node types scaled down to ``cores_per_node`` cores.

    Base power and air flow scale proportionally with the core count so
    the compute-to-overhead ratio of the original servers is preserved.
    Used by the exact (brute-force) solver's validation, whose
    enumeration is only tractable for rooms with a handful of cores.
    """
    if cores_per_node <= 0:
        raise ValueError("cores_per_node must be positive")
    out = []
    for spec in paper_node_types(static_fraction):
        scale = cores_per_node / spec.cores_per_node
        out.append(replace(spec,
                           cores_per_node=cores_per_node,
                           base_power_kw=spec.base_power_kw * scale,
                           flow_m3s=spec.flow_m3s * scale))
    return out
