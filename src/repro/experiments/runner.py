"""Comparison runner — the Figure 6 experiment (Section VII).

For each scenario both techniques solve the first-step assignment under
the same power cap and thermal model:

* the paper's three-stage technique at each ψ level (and "best of"),
* the P0-or-off baseline adapted from Parolini et al. [26].

A *simulation set* aggregates the per-run percentage improvements into a
mean with a 95% confidence interval (Student t), exactly the quantity
each Figure 6 bar reports.

Execution (parallel workers, on-disk caching, retry/failure recording)
lives in :mod:`repro.experiments.engine`; this module defines the
run-level quantities and keeps the historical serial entry point
:func:`run_simulation_set` as a thin wrapper over the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.core.api import SolveOptions, SolveRequest, solve
from repro.experiments.config import ScenarioConfig
from repro.experiments.generator import Scenario

__all__ = ["DegenerateBaselineError", "RunResult", "RunFailure",
           "ConfidenceInterval", "SetResult", "run_comparison",
           "run_simulation_set", "confidence_interval"]


class DegenerateBaselineError(ValueError):
    """The baseline earned zero reward, so % improvement is undefined.

    Carries the ``seed`` and ``p_const`` of the offending run so a sweep
    can report *which* room degenerated.  The experiment engine records
    such runs as degenerate instead of letting them abort a set.
    """

    def __init__(self, seed: int, p_const: float):
        super().__init__(
            f"baseline earned zero reward (seed {seed}, "
            f"p_const {p_const:.3f} kW); improvement undefined")
        self.seed = seed
        self.p_const = p_const


@dataclass(frozen=True)
class RunResult:
    """Rewards and improvements for one scenario.

    Attributes
    ----------
    seed:
        Scenario seed.
    reward_by_psi:
        Stage 3 reward rate of the three-stage technique per ψ.
    baseline_reward:
        Reward rate of the rounded Eq. 21 baseline.
    p_const:
        The cap both techniques ran under.
    """

    seed: int
    reward_by_psi: dict[float, float]
    baseline_reward: float
    p_const: float

    @property
    def best_reward(self) -> float:
        """Best-of-ψ reward (the paper's third bar per set)."""
        return max(self.reward_by_psi.values())

    @property
    def is_degenerate(self) -> bool:
        """True when the baseline earned nothing (improvement undefined)."""
        return self.baseline_reward <= 0

    def improvement_pct(self, psi: float | None = None) -> float:
        """Percentage improvement over the baseline.

        ``psi=None`` uses the best-of-ψ reward.  Raises
        :class:`DegenerateBaselineError` (a ``ValueError``) when the
        baseline earned zero reward.
        """
        ours = self.best_reward if psi is None else self.reward_by_psi[psi]
        if self.baseline_reward <= 0:
            raise DegenerateBaselineError(self.seed, self.p_const)
        return 100.0 * (ours - self.baseline_reward) / self.baseline_reward

    def to_dict(self) -> dict:
        """JSON-friendly form (the engine's on-disk cache format)."""
        return {
            "seed": self.seed,
            "p_const": self.p_const,
            "baseline_reward": self.baseline_reward,
            "reward_by_psi": [[psi, r] for psi, r
                              in sorted(self.reward_by_psi.items())],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            seed=int(data["seed"]),
            reward_by_psi={float(psi): float(r)
                           for psi, r in data["reward_by_psi"]},
            baseline_reward=float(data["baseline_reward"]),
            p_const=float(data["p_const"]),
        )


@dataclass(frozen=True)
class RunFailure:
    """A run that raised after all retries — kept, not fatal.

    Attributes
    ----------
    seed:
        Scenario seed of the failed run.
    error_type / message:
        Exception class name and its message.
    attempts:
        How many times the run was tried before giving up.
    p_const:
        The run's power cap if the scenario was generated before the
        failure, else ``None``.
    """

    seed: int
    error_type: str
    message: str
    attempts: int = 1
    p_const: float | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "p_const": self.p_const,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunFailure":
        p_const = data.get("p_const")
        return cls(
            seed=int(data["seed"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            attempts=int(data.get("attempts", 1)),
            p_const=None if p_const is None else float(p_const),
        )


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean with a symmetric t-distribution confidence interval."""

    mean: float
    half_width: float
    level: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f} +/- {self.half_width:.2f}"


def confidence_interval(samples: np.ndarray,
                        level: float = 0.95) -> ConfidenceInterval:
    """95% (by default) CI of the mean using the Student t quantile."""
    samples = np.asarray(samples, dtype=float)
    if samples.size < 2:
        raise ValueError("need at least two samples for a confidence interval")
    mean = float(samples.mean())
    sem = float(samples.std(ddof=1) / np.sqrt(samples.size))
    t_crit = float(stats.t.ppf(0.5 + level / 2.0, df=samples.size - 1))
    return ConfidenceInterval(mean=mean, half_width=t_crit * sem, level=level)


@dataclass
class SetResult:
    """Aggregated Figure 6 numbers for one simulation set.

    ``improvements`` maps a label (``"psi=25"``, ``"psi=50"``, ``"best"``)
    to the per-run percentage improvements of the *valid* runs;
    ``intervals`` to their CIs.  Degenerate runs (zero-reward baseline)
    and failed runs are kept separately so a bad room documents itself
    instead of crashing the whole set.
    """

    config: ScenarioConfig
    runs: list[RunResult]
    degenerate: list[RunResult] = field(default_factory=list)
    failures: list[RunFailure] = field(default_factory=list)
    improvements: dict[str, np.ndarray] = field(init=False)
    intervals: dict[str, ConfidenceInterval] = field(init=False)

    def __post_init__(self) -> None:
        labels: dict[str, np.ndarray] = {}
        for psi in self.config.psis:
            labels[f"psi={psi:g}"] = np.asarray(
                [r.improvement_pct(psi) for r in self.runs])
        labels["best"] = np.asarray(
            [r.improvement_pct(None) for r in self.runs])
        self.improvements = labels
        self.intervals = {k: confidence_interval(v)
                          for k, v in labels.items()}

    @property
    def n_attempted(self) -> int:
        """Total runs attempted, including degenerate and failed ones."""
        return len(self.runs) + len(self.degenerate) + len(self.failures)


def run_comparison(scenario: Scenario) -> RunResult:
    """Run both techniques on one scenario (one Figure 6 sample).

    With the default ``backend="three_stage"`` this is the paper's
    best-of-ψ pipeline; any other configured backend (metaheuristics,
    external registrations) replaces the "ours" side, keyed under the
    single configured ψ, while the baseline side stays the paper's
    baseline for a like-for-like improvement number.
    """
    config = scenario.config
    options = SolveOptions(psis=tuple(config.psis), search=config.search,
                           backend=config.backend,
                           seed=config.backend_seed,
                           max_evals=config.max_evals,
                           thermal_backend=config.thermal_backend)
    request = SolveRequest(
        scenario.datacenter, scenario.workload, scenario.p_const,
        options=options)
    if config.backend == "three_stage":
        ours = solve(request, method="best_psi")
        reward_by_psi = ours.reward_by_psi
    else:
        ours = solve(request)
        reward_by_psi = {float(psi): ours.reward_rate
                         for psi in config.psis}
    ours.verify(scenario.datacenter, scenario.p_const)
    baseline = solve(request, method="baseline")
    return RunResult(
        seed=scenario.seed,
        reward_by_psi=reward_by_psi,
        baseline_reward=baseline.reward_rate,
        p_const=scenario.p_const,
    )


def run_simulation_set(config: ScenarioConfig, n_runs: int = 25,
                       base_seed: int = 1000,
                       progress: bool = False) -> SetResult:
    """Run a whole simulation set (paper: 25 runs) and aggregate.

    Seeds are ``base_seed + run_index`` so individual runs can be
    reproduced in isolation.  This is the historical serial entry point;
    it delegates to :func:`repro.experiments.engine.run_set` — pass an
    :class:`~repro.experiments.engine.EngineConfig` there for parallel
    workers, caching and resume.
    """
    from repro.experiments.engine import run_set
    from repro.experiments.progress import PrintingReporter

    reporter = PrintingReporter() if progress else None
    return run_set(config, n_runs=n_runs, base_seed=base_seed,
                   reporter=reporter)
