"""Optimization utilities: piecewise-linear functions, LP wrapper, search.

These are the generic mathematical tools the paper's three-stage
assignment is built from; nothing in this subpackage knows about data
centers.
"""

from repro.optimize.linprog import InfeasibleError, LinearProgram, LPSolution
from repro.optimize.piecewise import PiecewiseLinear, Segment, concave_majorant_points
from repro.optimize.search import (SearchResult, coarse_to_fine_search,
                                   golden_refine, temperature_grid,
                                   uniform_then_coordinate_search)

__all__ = [
    "InfeasibleError",
    "LinearProgram",
    "LPSolution",
    "PiecewiseLinear",
    "Segment",
    "concave_majorant_points",
    "SearchResult",
    "coarse_to_fine_search",
    "golden_refine",
    "temperature_grid",
    "uniform_then_coordinate_search",
]
