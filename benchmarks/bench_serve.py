"""Warm-started replanning — cold vs incremental solves in the service.

Times the rolling-horizon replan loop of :mod:`repro.serve` on a
Figure-6-scale room (150 nodes, 3 CRACs) under a diurnal + flash-crowd
arrival trace: every tick changes only the arrival-rate vector, which
is the ``"stage1"`` warm-start reuse level — Stage 1/2 replay from the
previous :class:`~repro.core.warmstart.SolveState` and only the
Stage 3 rate LP re-solves.  Writes ``BENCH_serve.json`` to the repo
root; CI gates on ``fig6.warm_speedup >= 2`` and the benchmark itself
asserts the warm plans are bit-identical to cold (reward retained is
exactly 1.0, not approximately).

Like ``bench_kernels.py``, the room uses a synthetic uniform-mixing
matrix (``alpha[i, j] = F[j] / sum(F)``) instead of the Table II
interference LP: replan latency depends only on problem shape.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.api import SolveRequest, solve
from repro.datacenter import build_datacenter, power_bounds
from repro.thermal.heatflow import HeatFlowModel
from repro.workload import DiurnalProfile, FlashCrowdProfile, generate_workload

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

N_TICKS = 6
TICK_S = 60.0
REPS = 3


def _room(n_nodes: int, seed: int):
    rng = np.random.default_rng(seed)
    dc = build_datacenter(n_nodes=n_nodes, n_crac=3, rng=rng)
    flows = dc.unit_flows
    alpha = np.tile(flows / flows.sum(), (flows.size, 1))
    dc.thermal = HeatFlowModel(alpha, flows, dc.n_crac)
    workload = generate_workload(dc, rng)
    bounds = power_bounds(dc)
    cap = bounds.p_min + 0.55 * (bounds.p_max - bounds.p_min)
    return dc, workload, cap


def _tick_rates(workload) -> list[np.ndarray]:
    horizon = N_TICKS * TICK_S
    profile = FlashCrowdProfile(
        DiurnalProfile(base_rates=workload.arrival_rates, amplitude=0.4,
                       period_s=horizon),
        bursts=((horizon / 3.0, TICK_S, 3.0),))
    return [np.asarray(profile.rates(k * TICK_S), dtype=float)
            for k in range(N_TICKS)]


def _bench_room(n_nodes: int, seed: int) -> dict:
    dc, workload, cap = _room(n_nodes, seed)
    rates = _tick_rates(workload)
    requests = [SolveRequest(dc, replace(workload, arrival_rates=r), cap)
                for r in rates]

    # cold: every tick solved from scratch (best-of-REPS per tick)
    cold_s = [float("inf")] * N_TICKS
    cold_plans = [None] * N_TICKS
    for _ in range(REPS):
        for k, req in enumerate(requests):
            t0 = time.perf_counter()
            plan = solve(req)
            cold_s[k] = min(cold_s[k], time.perf_counter() - t0)
            cold_plans[k] = plan

    # warm: the serve chain — each tick re-solves from the previous
    # tick's state (rates-only change -> exact stage-1 replay).  The
    # chain is re-run whole per rep so every timed solve is a genuine
    # previous-tick warm start, never a same-request replay.
    warm_s = [float("inf")] * N_TICKS
    warm_plans = [None] * N_TICKS
    warm_levels = [None] * N_TICKS
    for _ in range(REPS):
        state = None
        for k, req in enumerate(requests):
            warm_req = replace(req, warm_start=state)
            t0 = time.perf_counter()
            plan = solve(warm_req)
            warm_s[k] = min(warm_s[k], time.perf_counter() - t0)
            state = plan.state
            warm_plans[k] = plan
            warm_levels[k] = plan.state.runtime.level

    # the contract: warm plans are bit-identical to cold plans
    for cold_p, warm_p in zip(cold_plans, warm_plans):
        assert np.array_equal(cold_p.t_crac_out, warm_p.t_crac_out)
        assert np.array_equal(cold_p.pstates, warm_p.pstates)
        assert np.array_equal(cold_p.tc, warm_p.tc)
        assert cold_p.reward_rate == warm_p.reward_rate

    cold_reward = sum(p.reward_rate for p in cold_plans) * TICK_S
    warm_reward = sum(p.reward_rate for p in warm_plans) * TICK_S
    # tick 0 has no previous state; the replan comparison is ticks 1+
    cold_replan = sum(cold_s[1:]) / (N_TICKS - 1)
    warm_replan = sum(warm_s[1:]) / (N_TICKS - 1)
    return {
        "n_nodes": dc.n_nodes,
        "n_ticks": N_TICKS,
        "tick_s": TICK_S,
        "cold_replan_s": cold_replan,
        "warm_replan_s": warm_replan,
        "warm_speedup": cold_replan / warm_replan,
        "cold_reward": cold_reward,
        "warm_reward": warm_reward,
        "reward_retained": warm_reward / cold_reward,
        "warm_levels": warm_levels,
        "per_tick": [{"cold_s": c, "warm_s": w}
                     for c, w in zip(cold_s, warm_s)],
    }


def bench_serve(benchmark, capsys, scale):
    fig6 = _bench_room(150, 2012)
    doc = {"schema": 1, "reps": REPS, "fig6": fig6}
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # keep pytest-benchmark's machinery engaged (one cheap round)
    dc, workload, cap = _room(30, 2012)
    benchmark.pedantic(
        lambda: solve(SolveRequest(dc, workload, cap)),
        rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"fig6 room: {fig6['n_nodes']} nodes, {N_TICKS} ticks")
        for k, t in enumerate(fig6["per_tick"]):
            level = fig6["warm_levels"][k]
            print(f"  tick {k}: cold {t['cold_s'] * 1e3:8.1f} ms"
                  f"  warm {t['warm_s'] * 1e3:8.1f} ms  ({level})")
        print(f"  mean replan (ticks 1+): cold "
              f"{fig6['cold_replan_s'] * 1e3:.1f} ms, warm "
              f"{fig6['warm_replan_s'] * 1e3:.1f} ms "
              f"-> x{fig6['warm_speedup']:.1f}")
        print(f"  reward retained: {fig6['reward_retained']:.6f}")
        print(f"written to {OUT_PATH.name}")

    assert fig6["reward_retained"] == 1.0, \
        "warm replans changed plan values — the SolveState contract broke"
    assert fig6["warm_speedup"] >= 2.0, \
        "warm replanning regressed below the 2x gate on the fig6 room"
