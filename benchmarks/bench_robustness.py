"""Robustness sweep — how stale can the ECS estimates be?

The pipeline plans on estimated computational speeds (Section III.D);
this benchmark freezes a plan's P-states/outlets, perturbs the "true"
ECS by up to ±30%, lets the rates re-adapt (Stage 3), and measures the
fraction of the truth-knowing oracle's reward the frozen plan retains.
Expected shape: graceful degradation — P-state mixes chosen for the
nominal workload remain within a few percent of oracle even under
substantial estimation error, because the rates absorb most of the
adaptation.
"""

from repro.experiments.robustness import evaluate_robustness

DELTAS = (0.0, 0.1, 0.2, 0.3)


def bench_robustness(benchmark, capsys, bench_scenario, scale):
    sc = bench_scenario
    n_trials = 5 if scale.is_paper else 3

    points = benchmark.pedantic(
        evaluate_robustness,
        args=(sc.datacenter, sc.workload, sc.p_const, DELTAS),
        kwargs={"n_trials": n_trials}, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("plan robustness to ECS estimation error "
              f"({n_trials} trials per level)")
        print(f"{'delta':>7}{'mean of oracle':>16}{'worst':>8}")
        for p in points:
            print(f"{p.delta:>7.1f}{p.achieved_fraction:>15.1%}"
                  f"{p.worst_fraction:>8.1%}")
        print("values can exceed 100%: the oracle is the same heuristic "
              "re-planned on the truth,\nnot a global optimum — frozen "
              "P-states occasionally land on a better vertex.")

    assert points[0].achieved_fraction == 1.0
    # graceful degradation: even ±30% error keeps most of the reward
    assert points[-1].achieved_fraction > 0.8
