"""``repro lint`` — argument handling and the command body.

Exit codes: 0 clean (possibly with baselined/suppressed findings),
1 actionable findings (or unparsable files), 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.base import (LintConfig, load_span_taxonomy, rule_catalog)
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import lint_paths, select_rules
from repro.lint.output import render_github, render_json, render_text

__all__ = ["add_lint_arguments", "main", "run_lint_command"]

DEFAULT_BASELINE = "lint-baseline.json"
FORMATS = ("text", "json", "github")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` arguments to ``parser``."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--format", choices=FORMATS, default="text",
                        help="report format (default text; 'github' "
                             "emits ::error annotations for Actions)")
    parser.add_argument("--baseline", type=str, default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default {DEFAULT_BASELINE}; a missing "
                             "file is an empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--select", type=str, default=None,
                        help="comma-separated rule codes to run "
                             "exclusively (e.g. RL001,RL002)")
    parser.add_argument("--ignore", type=str, default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write every current finding to the "
                             "baseline file and exit 0 (adoption "
                             "workflow; fill in the reasons!)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _split_codes(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [c.strip() for c in text.split(",") if c.strip()]


def run_lint_command(args: argparse.Namespace) -> int:
    """Body of ``repro lint`` (shared by repro.cli and python -m)."""
    if args.list_rules:
        for code, name, category, description in rule_catalog():
            print(f"{code}  {name:30s} [{category}]")
            print(f"       {description}")
        return 0
    try:
        rules = select_rules(_split_codes(args.select),
                             _split_codes(args.ignore))
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    start = Path(args.paths[0]) if args.paths else Path.cwd()
    config = LintConfig(span_taxonomy=load_span_taxonomy(start))
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    try:
        report = lint_paths(list(args.paths), rules=rules, config=config,
                            baseline=baseline)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(report.findings, args.baseline)
        print(f"wrote {len(report.findings)} entries to {args.baseline}; "
              "replace the TODO reasons with real justifications")
        return 0
    renderer = {"text": render_text, "json": render_json,
                "github": render_github}[args.format]
    print(renderer(report))
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point: ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism / physics-invariant / "
                    "hygiene analysis for the repro codebase")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))
