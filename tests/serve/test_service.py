"""Tests for repro.serve.service — determinism, warm levels, shedding."""

import numpy as np
import pytest

from repro.experiments import PAPER_SET_1, generate_scenario, scaled_down
from repro.serve import ControlService, ServeConfig, serve_trace
from repro.workload import (ConstantProfile, DiurnalProfile,
                            FlashCrowdProfile, stream_trace_ticks)

N_NODES = 8
SEED = 3
TICK_S = 20.0


@pytest.fixture(scope="module")
def serve_scenario():
    return generate_scenario(scaled_down(PAPER_SET_1, N_NODES), SEED)


def _run(sc, profile, n_ticks, config=None, trace_seed=SEED + 1):
    ticks = stream_trace_ticks(sc.workload, profile, TICK_S, n_ticks,
                               np.random.default_rng(trace_seed))
    return serve_trace(sc.datacenter, sc.workload, sc.p_const, ticks,
                       config or ServeConfig(tick_s=TICK_S))


def _diurnal(sc, n_ticks):
    return DiurnalProfile(base_rates=sc.workload.arrival_rates,
                          amplitude=0.4, period_s=TICK_S * n_ticks)


class TestConfig:
    def test_invalid_tick_rejected(self):
        with pytest.raises(ValueError, match="tick_s"):
            ServeConfig(tick_s=0.0)

    def test_invalid_warm_rejected(self):
        with pytest.raises(ValueError, match="warm"):
            ServeConfig(warm="sometimes")

    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(ValueError, match="queue_depth"):
            ServeConfig(queue_depth=0)


class TestDeterminism:
    def test_same_seed_same_tick_log(self, serve_scenario):
        profile = _diurnal(serve_scenario, 5)
        a = _run(serve_scenario, profile, 5)
        b = _run(serve_scenario, profile, 5)
        assert a.to_dict() == b.to_dict()

    def test_log_contains_no_wall_times(self, serve_scenario):
        result = _run(serve_scenario, _diurnal(serve_scenario, 3), 3)
        doc = result.to_dict()
        for tick in doc["ticks"]:
            assert "wall" not in " ".join(tick)
            assert set(tick) == {"index", "start_s", "rates",
                                 "reward_rate", "warm_level", "derated",
                                 "arrived", "admitted", "shed_tasks",
                                 "shed", "precooled"}


class TestWarmLevels:
    def test_first_tick_cold_rest_warm(self, serve_scenario):
        result = _run(serve_scenario, _diurnal(serve_scenario, 5), 5)
        assert result.ticks[0].warm_level == "none"
        assert all(t.warm_level in ("stage1", "request", "structure")
                   for t in result.ticks[1:])

    def test_constant_rates_replay_at_request_level(self, serve_scenario):
        profile = ConstantProfile(
            base_rates=serve_scenario.workload.arrival_rates)
        result = _run(serve_scenario, profile, 4)
        assert all(t.warm_level == "request" for t in result.ticks[1:])

    def test_warm_off_solves_every_tick_cold(self, serve_scenario):
        config = ServeConfig(tick_s=TICK_S, warm="off")
        result = _run(serve_scenario, _diurnal(serve_scenario, 3), 3,
                      config)
        assert all(t.warm_level == "none" for t in result.ticks)

    def test_warm_matches_cold_rewards(self, serve_scenario):
        """The warm chain never changes the committed plans."""
        profile = _diurnal(serve_scenario, 4)
        warm = _run(serve_scenario, profile, 4)
        cold = _run(serve_scenario, profile, 4,
                    ServeConfig(tick_s=TICK_S, warm="off"))
        assert [t.reward_rate for t in warm.ticks] \
            == [t.reward_rate for t in cold.ticks]
        assert [t.admitted for t in warm.ticks] \
            == [t.admitted for t in cold.ticks]


class TestAdmissionControl:
    def test_flash_crowd_sheds(self, serve_scenario):
        base = ConstantProfile(
            base_rates=serve_scenario.workload.arrival_rates)
        profile = FlashCrowdProfile(
            base, bursts=((2 * TICK_S, TICK_S, 8.0),))
        result = _run(serve_scenario, profile, 4)
        burst = result.ticks[2]
        assert burst.shed and burst.shed_tasks > 0
        assert burst.arrived > 3 * result.ticks[0].arrived
        # the burst tick sheds a much larger *fraction* than steady state
        assert burst.shed_tasks / burst.arrived \
            > 1.5 * max(t.shed_tasks / t.arrived
                        for t in result.ticks if t.index != 2)

    def test_accounting_adds_up(self, serve_scenario):
        result = _run(serve_scenario, _diurnal(serve_scenario, 4), 4)
        for t in result.ticks:
            assert t.admitted + t.shed_tasks == t.arrived
        assert result.tasks_arrived \
            == result.tasks_shed + sum(t.admitted for t in result.ticks)


class TestObservability:
    def test_spans_and_counters_emitted(self, serve_scenario):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            _run(serve_scenario, _diurnal(serve_scenario, 3), 3)
            snap = obs.current_registry().snapshot()
            records = list(obs.current_tracer().records)
        finally:
            obs.disable()
            obs.reset()
        assert snap["serve.ticks"]["value"] == 3
        names = {r["name"] for r in records}
        assert "serve" in names and "serve.tick" in names


class TestStream:
    def test_async_stream_yields_records(self, serve_scenario):
        import asyncio

        service = ControlService(serve_scenario.datacenter,
                                 serve_scenario.workload,
                                 serve_scenario.p_const,
                                 ServeConfig(tick_s=TICK_S))
        ticks = stream_trace_ticks(serve_scenario.workload,
                                   _diurnal(serve_scenario, 3), TICK_S, 3,
                                   np.random.default_rng(SEED + 1))

        async def collect():
            return [r async for r in service.stream(ticks)]

        records = asyncio.run(collect())
        assert [r.index for r in records] == [0, 1, 2]

    def test_invalid_cap_rejected(self, serve_scenario):
        with pytest.raises(ValueError, match="power cap"):
            ControlService(serve_scenario.datacenter,
                           serve_scenario.workload, 0.0)
