"""Tests for repro.core.arr — ARR aggregation and the Figure 5 hull."""

import numpy as np
import pytest

from repro.core.arr import aggregate_reward_rate, select_best_task_types
from repro.core.reward import reward_rate_function
from repro.experiments.figures import example_node_type, example_workload


class TestSelection:
    def test_psi_counts(self, small_dc, small_workload):
        spec = small_dc.node_types[0]
        sel25 = select_best_task_types(small_workload, spec, 0, 25.0)
        sel50 = select_best_task_types(small_workload, spec, 0, 50.0)
        sel100 = select_best_task_types(small_workload, spec, 0, 100.0)
        assert sel25.size == 2      # 25% of 8
        assert sel50.size == 4
        assert sel100.size == 8

    def test_subset_nesting(self, small_dc, small_workload):
        """The best 25% are contained in the best 50%."""
        spec = small_dc.node_types[0]
        sel25 = set(select_best_task_types(small_workload, spec, 0, 25.0))
        sel50 = set(select_best_task_types(small_workload, spec, 0, 50.0))
        assert sel25 <= sel50

    def test_at_least_one(self):
        sel = select_best_task_types(example_workload(10.0),
                                     example_node_type(), 0, 1.0)
        assert sel.size == 1

    def test_invalid_psi(self, small_dc, small_workload):
        spec = small_dc.node_types[0]
        for bad in (0.0, -5.0, 150.0):
            with pytest.raises(ValueError, match="psi"):
                select_best_task_types(small_workload, spec, 0, bad)

    def test_selection_ranks_by_ratio(self, small_dc, small_workload):
        """Every selected type has ratio >= every unselected type."""
        from repro.core.reward import reward_power_ratio
        spec = small_dc.node_types[1]
        sel = set(select_best_task_types(small_workload, spec, 1, 50.0))
        ratios = [reward_power_ratio(small_workload, i, spec, 1)
                  for i in range(small_workload.n_task_types)]
        worst_selected = min(ratios[i] for i in sel)
        best_unselected = max(ratios[i] for i in range(8) if i not in sel)
        assert worst_selected >= best_unselected - 1e-12


class TestFigure5:
    def test_raw_equals_figure4(self):
        arr = aggregate_reward_rate(example_workload(1.5),
                                    example_node_type(), 0, psi=100.0)
        np.testing.assert_allclose(arr.raw.y, [0.0, 0.0, 0.9, 1.2])

    def test_concave_ignores_bad_pstate(self):
        """Figure 5: the hull goes (0,0) -> (0.1,0.9) -> (0.15,1.2)."""
        arr = aggregate_reward_rate(example_workload(1.5),
                                    example_node_type(), 0, psi=100.0)
        np.testing.assert_allclose(arr.concave.x, [0.0, 0.10, 0.15])
        np.testing.assert_allclose(arr.concave.y, [0.0, 0.9, 1.2])

    def test_paper_two_core_example(self):
        """Section V.B.2: with 0.1 W for 2 cores, hull and exact integer
        optimum agree (one core at P1, one off)."""
        arr = aggregate_reward_rate(example_workload(1.5),
                                    example_node_type(), 0, psi=100.0)
        # node-level optimum = 2 * ARR_hull(0.05) = chord value at 0.1 W
        assert 2 * arr.concave(0.05) == pytest.approx(0.9)


class TestAggregateProperties:
    @pytest.mark.parametrize("psi", [25.0, 50.0, 100.0])
    def test_concave_and_dominating(self, small_dc, small_workload, psi):
        for j, spec in enumerate(small_dc.node_types):
            arr = aggregate_reward_rate(small_workload, spec, j, psi)
            assert arr.concave.is_concave(tol=1e-7)
            grid = arr.raw.x
            assert np.all(arr.concave(grid) >= arr.raw(grid) - 1e-9)

    def test_anchored_at_origin(self, small_dc, small_workload):
        for j, spec in enumerate(small_dc.node_types):
            arr = aggregate_reward_rate(small_workload, spec, j, 50.0)
            assert arr.concave(0.0) == pytest.approx(0.0)

    def test_max_power_is_p0(self, small_dc, small_workload):
        for j, spec in enumerate(small_dc.node_types):
            arr = aggregate_reward_rate(small_workload, spec, j, 50.0)
            assert arr.max_power == pytest.approx(spec.p0_power_kw)

    def test_segments_decreasing_slope(self, small_dc, small_workload):
        for j, spec in enumerate(small_dc.node_types):
            arr = aggregate_reward_rate(small_workload, spec, j, 25.0)
            _, slopes = arr.segments_decreasing_slope()
            assert np.all(np.diff(slopes) <= 1e-9)

    def test_average_of_selected_rrs(self, small_dc, small_workload):
        """raw ARR == mean of the selected types' RR functions."""
        spec = small_dc.node_types[0]
        arr = aggregate_reward_rate(small_workload, spec, 0, 50.0)
        grid = np.linspace(0.0, spec.p0_power_kw, 33)
        manual = np.mean([
            reward_rate_function(small_workload, int(i), spec, 0)(grid)
            for i in arr.selected_task_types
        ], axis=0)
        np.testing.assert_allclose(arr.raw(grid), manual, atol=1e-12)
