"""Measured energy accounting for second-step simulation runs.

The first-step optimizers budget *worst-case* power (fully busy cores at
nominal draw).  Given the DES's per-type busy times, this module
computes what the room *actually* drew — optionally under the
task-dependent power extension — closing the loop between the planning
model and the simulated reality:

* compute energy: per core, busy seconds per task type weighted by the
  active draw of its P-state (+ idle draw for the remainder);
* cooling energy: the CRACs remove the average dissipated heat at the
  assignment's outlet temperatures (steady state — horizons are long
  against the thermal time constant, see the transient benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.datacenter.power import total_power
from repro.power.taskpower import TaskPowerModel
from repro.simulate.metrics import SimulationMetrics
from repro.workload.tasktypes import Workload

__all__ = ["EnergyReport", "energy_report"]


@dataclass(frozen=True)
class EnergyReport:
    """Average power and total energy over a simulated horizon.

    Attributes
    ----------
    compute_kw / cooling_kw:
        Average electric power, kW.
    energy_kwh:
        Total energy over the horizon (compute + cooling), kWh.
    reward_per_kwh:
        The run's economic efficiency — total reward per kWh.
    budgeted_kw:
        The worst-case power the planner budgeted (nominal, always-busy);
        the gap to ``total_kw`` is the conservatism of the plan.
    """

    compute_kw: float
    cooling_kw: float
    energy_kwh: float
    reward_per_kwh: float
    budgeted_kw: float

    @property
    def total_kw(self) -> float:
        return self.compute_kw + self.cooling_kw


def energy_report(datacenter: DataCenter, workload: Workload,
                  metrics: SimulationMetrics, pstates: np.ndarray,
                  t_crac_out: np.ndarray,
                  task_power: TaskPowerModel | None = None) -> EnergyReport:
    """Account the energy actually drawn during a simulated run.

    Parameters
    ----------
    metrics:
        Output of :func:`repro.simulate.engine.simulate_trace` (must
        carry ``busy_by_type``).
    pstates / t_crac_out:
        The assignment the run executed.
    task_power:
        Optional task-dependent draw; ``None`` uses the paper's base
        model (factor 1 active, and idle draw equal to the P-state power
        — i.e. the planner's own always-on assumption).
    """
    if metrics.busy_by_type is None:
        raise ValueError("metrics lack busy_by_type; re-run the simulation")
    pstates = np.asarray(pstates, dtype=int)
    nominal = np.empty(datacenter.n_cores)
    for t, spec in enumerate(datacenter.node_types):
        mask = datacenter.core_type == t
        nominal[mask] = np.asarray(spec.pstate_power_kw)[pstates[mask]]
    busy_share = metrics.busy_by_type / metrics.duration   # (T, NCORES)
    total_busy = busy_share.sum(axis=0)
    if np.any(total_busy > 1.0 + 1e-6):
        raise ValueError("busy share exceeds 1; inconsistent metrics")
    if task_power is None:
        factors = np.ones(workload.n_task_types)
        idle_frac = 1.0          # the base model never powers down a core
    else:
        factors = task_power.factors
        idle_frac = task_power.idle_fraction
    active_kw = (busy_share * factors[:, None]).sum(axis=0) * nominal
    idle_kw = (1.0 - np.minimum(total_busy, 1.0)) * idle_frac * nominal
    core_kw = active_kw + idle_kw
    node_kw = datacenter.node_base_power + np.bincount(
        datacenter.core_node, weights=core_kw,
        minlength=datacenter.n_nodes)
    breakdown = total_power(datacenter, np.asarray(t_crac_out, dtype=float),
                            node_kw)
    budgeted = float(datacenter.node_power_kw(pstates).sum())
    hours = metrics.duration / 3600.0
    energy_kwh = breakdown.total * hours
    reward_per_kwh = (metrics.total_reward / energy_kwh
                      if energy_kwh > 0 else float("inf"))
    return EnergyReport(
        compute_kw=breakdown.compute_total,
        cooling_kw=breakdown.cooling_total,
        energy_kwh=energy_kwh,
        reward_per_kwh=reward_per_kwh,
        budgeted_kw=budgeted,
    )
