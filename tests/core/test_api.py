"""Tests for repro.core.api — the unified solver entry point."""

import pytest

from repro.core.api import (BestPsiOutcome, SolveOptions, SolveOutcome,
                            SolveRequest, SolveResult, SolveState,
                            available_methods, solve)


@pytest.fixture(scope="module")
def request_for(scenario):
    return SolveRequest(scenario.datacenter, scenario.workload,
                        scenario.p_const)


class TestOptions:
    def test_defaults(self):
        opt = SolveOptions()
        assert opt.psi == 50.0 and opt.psis == (25.0, 50.0)
        assert opt.search == "fast"

    def test_bad_search_rejected(self):
        with pytest.raises(ValueError, match="search mode"):
            SolveOptions(search="bogus")

    def test_empty_psis_rejected(self):
        with pytest.raises(ValueError, match="psi"):
            SolveOptions(psis=())

    def test_with_options(self, request_for):
        changed = request_for.with_options(psi=25.0, search="full")
        assert changed.options.psi == 25.0
        assert changed.options.search == "full"
        assert request_for.options.psi == 50.0   # original untouched
        assert changed.datacenter is request_for.datacenter


class TestSolveDispatch:
    def test_methods_listed(self):
        assert set(available_methods()) >= {"three_stage", "best_psi",
                                            "baseline", "exact",
                                            "annealing", "evolution"}

    def test_unknown_method_rejected(self, request_for):
        with pytest.raises(ValueError, match="unknown solver backend"):
            solve(request_for, method="not-a-solver")

    @pytest.mark.parametrize("method", ["three_stage", "best_psi",
                                        "baseline"])
    def test_outcome_protocol(self, request_for, scenario, method):
        outcome = solve(request_for, method=method)
        assert isinstance(outcome, SolveOutcome)
        assert outcome.reward_rate > 0
        outcome.verify(scenario.datacenter, scenario.p_const)
        data = outcome.to_dict()
        assert data["reward_rate"] == pytest.approx(outcome.reward_rate)

    def test_three_stage_matches_legacy(self, request_for, scenario,
                                        assignment):
        outcome = solve(request_for, method="three_stage")
        assert outcome.reward_rate == pytest.approx(assignment.reward_rate)

    def test_baseline_matches_legacy(self, request_for, baseline):
        outcome = solve(request_for, method="baseline")
        assert outcome.reward_rate == pytest.approx(baseline.reward_rate)
        assert outcome.search is not None    # trace attached by the API

    def test_best_psi_outcome(self, request_for, scenario):
        result = solve(request_for, method="best_psi")
        assert isinstance(result.outcome, BestPsiOutcome)
        assert set(result.by_psi) == {25.0, 50.0}
        assert result.reward_rate \
            == max(result.reward_by_psi.values())
        assert result.to_dict()["method"] == "best_psi"


class TestSolveResult:
    def test_pairs_outcome_with_state(self, request_for):
        result = solve(request_for)
        assert isinstance(result, SolveResult)
        assert isinstance(result.state, SolveState)
        assert result.state.method == "three_stage"

    def test_forwards_outcome_attributes(self, request_for):
        result = solve(request_for)
        assert result.psi == result.outcome.psi
        assert result.tc is result.outcome.tc
        assert result.pstates is result.outcome.pstates

    def test_unknown_attribute_raises(self, request_for):
        result = solve(request_for)
        with pytest.raises(AttributeError):
            result.no_such_attribute

    def test_satisfies_outcome_protocol(self, request_for, scenario):
        result = solve(request_for)
        assert isinstance(result, SolveOutcome)
        result.verify(scenario.datacenter, scenario.p_const)

    def test_result_pickles(self, request_for):
        import pickle

        result = solve(request_for)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.reward_rate == result.reward_rate
        # runtime caches are deliberately dropped from the pickle
        assert clone.state.runtime is None


class TestRetiredPositionalConventions:
    """The PR-1 legacy positional shims are gone: TypeError, not warning."""

    def test_three_stage_positional_psi_rejected(self, scenario):
        from repro.core import three_stage_assignment

        with pytest.raises(TypeError):
            three_stage_assignment(scenario.datacenter, scenario.workload,
                                   scenario.p_const, 50.0)

    def test_best_psi_positional_psis_rejected(self, scenario):
        from repro.core import best_psi_assignment

        with pytest.raises(TypeError):
            best_psi_assignment(scenario.datacenter, scenario.workload,
                                scenario.p_const, (50.0,))

    def test_solve_stage1_legacy_order_rejected(self, scenario):
        from repro.core import solve_stage1

        with pytest.raises(TypeError):
            solve_stage1(scenario.datacenter, scenario.workload,
                         50.0, scenario.p_const)

    def test_solve_stage1_missing_p_const_rejected(self, scenario):
        from repro.core import solve_stage1

        with pytest.raises(TypeError, match="p_const"):
            solve_stage1(scenario.datacenter, scenario.workload)

    def test_too_many_positionals_rejected(self, scenario):
        from repro.core import three_stage_assignment

        with pytest.raises(TypeError):
            three_stage_assignment(scenario.datacenter, scenario.workload,
                                   scenario.p_const, 50.0, "fast")
