"""Contribution 1 ablation — three-way technique comparison.

The paper argues (introduction, Section II) that per-server
utilization-threshold P-state control is ineffective under a room-level
power cap.  This benchmark pits three techniques against each other on
the same rooms under identical constraints:

1. the paper's three-stage data-center-level assignment,
2. the P0-or-off optimized baseline (Eq. 21),
3. a server-level 80%-utilization governor with an uncoordinated
   power-cap watchdog (the strawman the intro describes).

Expected ordering: three-stage >= baseline > server-level.
"""

import numpy as np

from repro.core import (solve_baseline, solve_server_level,
                        three_stage_assignment)
from repro.experiments import generate_scenario, scaled_down
from repro.experiments.config import PAPER_SET_3


def bench_ablation_serverlevel(benchmark, capsys, scale):
    seeds = range(2000, 2000 + max(3, scale.n_runs // 2))
    scenarios = [generate_scenario(scaled_down(PAPER_SET_3, scale.n_nodes),
                                   s) for s in seeds]

    def run():
        rows = []
        for sc in scenarios:
            ours = three_stage_assignment(sc.datacenter, sc.workload,
                                          sc.p_const, psi=50.0)
            base, _ = solve_baseline(sc.datacenter, sc.workload,
                                     sc.p_const)
            srv, _ = solve_server_level(sc.datacenter, sc.workload,
                                        sc.p_const)
            rows.append((ours.reward_rate, base.reward_rate,
                         srv.reward_rate, srv.cores_capped))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    arr = np.asarray([(o, b, s) for o, b, s, _ in rows])

    with capsys.disabled():
        print()
        print("technique comparison (reward/s), set-3 rooms")
        print(f"{'seed':>6}{'3-stage':>10}{'baseline':>10}"
              f"{'server-lvl':>11}{'capped cores':>14}")
        for seed, (o, b, s, c) in zip(seeds, rows):
            print(f"{seed:>6}{o:>10.1f}{b:>10.1f}{s:>11.1f}{c:>14}")
        means = arr.mean(axis=0)
        print(f"{'mean':>6}{means[0]:>10.1f}{means[1]:>10.1f}"
              f"{means[2]:>11.1f}")
        print(f"server-level deficit vs 3-stage: "
              f"{100 * (1 - means[2] / means[0]):.1f}%")

    # the paper's ordering must hold on average
    assert means[0] > means[1] > means[2]
