"""Tests for repro.datacenter.power — total power and Eq. 17/18 bounds."""

import numpy as np
import pytest

from repro.datacenter.power import power_bounds, total_power


class TestTotalPower:
    def test_breakdown_sums(self, small_dc):
        p = small_dc.node_power_kw(small_dc.all_p0_pstates())
        b = total_power(small_dc, np.full(small_dc.n_crac, 15.0), p)
        assert b.total == pytest.approx(b.compute_total + b.cooling_total)
        assert b.compute_total == pytest.approx(p.sum())

    def test_cooling_positive_under_load(self, small_dc):
        p = small_dc.node_power_kw(small_dc.all_p0_pstates())
        b = total_power(small_dc, np.full(small_dc.n_crac, 15.0), p)
        assert b.cooling_total > 0

    def test_warmer_outlets_cheaper_cooling(self, small_dc):
        p = small_dc.node_power_kw(small_dc.all_p0_pstates())
        cold = total_power(small_dc, np.full(small_dc.n_crac, 12.0), p)
        warm = total_power(small_dc, np.full(small_dc.n_crac, 18.0), p)
        assert warm.cooling_total < cold.cooling_total

    def test_cooling_tracks_compute_load(self, small_dc):
        """In steady state CRACs remove exactly the node heat, so cooling
        power scales with compute power at fixed outlets."""
        t = np.full(small_dc.n_crac, 15.0)
        lo = total_power(small_dc, t, small_dc.node_power_kw(
            small_dc.all_off_pstates()))
        hi = total_power(small_dc, t, small_dc.node_power_kw(
            small_dc.all_p0_pstates()))
        assert hi.cooling_total > lo.cooling_total


class TestPowerBounds:
    def test_ordering(self, small_dc):
        b = power_bounds(small_dc)
        assert 0 < b.p_min < b.p_const < b.p_max

    def test_eq18_midpoint(self, small_dc):
        b = power_bounds(small_dc)
        assert b.p_const == pytest.approx((b.p_min + b.p_max) / 2)

    def test_pmin_at_least_base_power(self, small_dc):
        b = power_bounds(small_dc)
        assert b.p_min >= small_dc.node_base_power.sum()

    def test_pmax_at_least_flat_out_compute(self, small_dc):
        b = power_bounds(small_dc)
        flat_out = small_dc.node_power_kw(small_dc.all_p0_pstates()).sum()
        assert b.p_max >= flat_out

    def test_min_prefers_warm_outlets(self, small_dc):
        """Minimizing power pushes outlet temps toward the feasible top."""
        b = power_bounds(small_dc)
        lo, hi = small_dc.cracs[0].outlet_range_c
        assert np.all(b.t_out_min >= lo)
        assert np.all(b.t_out_min <= hi)
        # idle room: very little heat, so warm outlets are optimal
        assert b.t_out_min.mean() > (lo + hi) / 2
