"""Stage 3 — optimal desired execution rates (Section V.B.4).

With P-states and CRAC outlets fixed by Stages 1-2, the Eq. 7 problem
collapses to a linear program over the ``TC`` matrix (desired rate of
executing each task type on each core):

* Constraint 1 — per core: ``sum_i TC(i, k) / ECS(i, CT_k, PS_k) <= 1``
  (a core cannot be more than 100% busy);
* Constraint 2 — ``TC(i, k) = 0`` when P-state ``PS_k`` cannot meet the
  type's deadline (``1/ECS > m_i``) or cannot run it at all (ECS = 0);
* Constraint 3 — per task type: ``sum_k TC(i, k) <= lambda_i`` (cannot
  execute more than arrives).

Cores with the same (node type, P-state) are interchangeable in every
coefficient, so the LP is solved over equivalence classes —
``O(T * NTYPES * eta)`` variables — and the class rates are split
equally over member cores, which preserves feasibility of Constraint 1
core-by-core (DESIGN.md §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.optimize.linprog import LinearProgram
from repro.workload.tasktypes import Workload

__all__ = ["Stage3Solution", "solve_stage3"]


@dataclass
class Stage3Solution:
    """Desired execution rates and the reward they predict.

    Attributes
    ----------
    tc:
        ``(T, NCORES)`` desired-rate matrix (tasks/second).
    reward_rate:
        The Eq. 7 objective at ``tc`` — the technique's final predicted
        total reward rate, the quantity compared in Figure 6.
    class_rates:
        Aggregated rate per (task type, class) for diagnostics, where a
        class is a distinct (node type, P-state) pair actually present.
    class_key:
        ``(node_type, pstate)`` per class column of ``class_rates``.
    """

    tc: np.ndarray
    reward_rate: float
    class_rates: np.ndarray
    class_key: list[tuple[int, int]]


def solve_stage3(datacenter: DataCenter, workload: Workload,
                 pstates: np.ndarray) -> Stage3Solution:
    """Solve the Stage 3 LP for a fixed P-state assignment."""
    with obs_span("stage3", n_cores=datacenter.n_cores):
        return _solve_stage3(datacenter, workload, pstates)


def _solve_stage3(datacenter: DataCenter, workload: Workload,
                  pstates: np.ndarray) -> Stage3Solution:
    pstates = np.asarray(pstates, dtype=int)
    if pstates.shape != (datacenter.n_cores,):
        raise ValueError(
            f"expected {datacenter.n_cores} P-states, got {pstates.shape}")
    n_types = len(datacenter.node_types)
    eta = workload.n_pstates
    if np.any(pstates < 0) or np.any(pstates >= eta):
        raise ValueError("P-state index out of ECS range")
    t_count = workload.n_task_types

    # ------------------------------------------------------------------
    # group cores into (node type, P-state) classes
    class_id = datacenter.core_type * eta + pstates
    present = np.unique(class_id)
    obs_metrics.histogram("stage3.classes").observe(present.size)
    class_count = np.asarray([(class_id == c).sum() for c in present])
    class_key = [(int(c // eta), int(c % eta)) for c in present]
    n_classes = present.size

    # drop classes that can execute nothing (off state) from the LP but
    # keep them in the key list for reporting
    lp = LinearProgram(name="stage3", maximize=True)
    # variable u[i, g] = total rate of type i over class g's cores
    var = np.full((t_count, n_classes), -1, dtype=int)
    rates_ub: dict[int, float] = {}
    for g, (jtype, k) in enumerate(class_key):
        ecs_col = workload.ecs[:, jtype, k]
        for i in range(t_count):
            if ecs_col[i] <= 0.0:
                continue                      # cannot run / off: TC = 0
            if not workload.can_meet_deadline(i, jtype, k):
                continue                      # Constraint 2: TC = 0
            idx = lp.add_variables(
                1, lb=0.0, ub=np.inf,
                objective=float(workload.rewards[i]))[0]
            var[i, g] = idx
    if lp.num_variables == 0:
        # nothing can earn reward (e.g. everything off)
        tc = np.zeros((t_count, datacenter.n_cores))
        return Stage3Solution(tc=tc, reward_rate=0.0,
                              class_rates=np.zeros((t_count, n_classes)),
                              class_key=class_key)

    # Constraint 1 aggregated per class: sum_i u[i,g]/ECS <= count_g
    for g, (jtype, k) in enumerate(class_key):
        coeffs = {}
        for i in range(t_count):
            if var[i, g] >= 0:
                coeffs[var[i, g]] = 1.0 / float(workload.ecs[i, jtype, k])
        if coeffs:
            lp.add_le_constraint(coeffs, float(class_count[g]))
    # Constraint 3 per task type: sum_g u[i,g] <= lambda_i
    for i in range(t_count):
        coeffs = {var[i, g]: 1.0 for g in range(n_classes) if var[i, g] >= 0}
        if coeffs:
            lp.add_le_constraint(coeffs, float(workload.arrival_rates[i]))

    sol = lp.solve()
    class_rates = np.zeros((t_count, n_classes))
    for i in range(t_count):
        for g in range(n_classes):
            if var[i, g] >= 0:
                class_rates[i, g] = sol.x[var[i, g]]

    # ------------------------------------------------------------------
    # distribute class rates equally over member cores
    tc = np.zeros((t_count, datacenter.n_cores))
    for g, c in enumerate(present):
        members = np.nonzero(class_id == c)[0]
        if class_rates[:, g].any():
            tc[:, members] = (class_rates[:, g] / members.size)[:, None]
    return Stage3Solution(tc=tc, reward_rate=float(sol.objective),
                          class_rates=class_rates, class_key=class_key)
