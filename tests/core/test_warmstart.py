"""Warm-start equivalence suite (the SolveState contract).

The contract under test (see :mod:`repro.core.api`): a warm-started
solve never changes *values*, only speed — identical requests replay
bit-identically, rate- and cap-perturbed requests under the default
options match their cold solves bit-for-bit, and the opt-in
``warm_seed`` heuristic is explicitly allowed to land on a nearby (but
verified-feasible) optimum.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.core.api import SolveOptions, SolveRequest, solve
from repro.core.warmstart import SolveState, compute_digests

RATE_BUMP = 1.07
CAP_SHRINK = 0.97


def _assert_bit_identical(a, b):
    """Every numeric artifact of the two outcomes is exactly equal."""
    assert np.array_equal(a.t_crac_out, b.t_crac_out)
    assert np.array_equal(a.pstates, b.pstates)
    assert np.array_equal(a.tc, b.tc)
    assert a.reward_rate == b.reward_rate


@pytest.fixture(scope="module")
def base_request(scenario):
    return SolveRequest(scenario.datacenter, scenario.workload,
                        scenario.p_const)


@pytest.fixture(scope="module")
def cold(base_request):
    return solve(base_request)


class TestIdenticalRequest:
    def test_replay_is_bit_identical(self, base_request, cold):
        warm = solve(replace(base_request, warm_start=cold.state))
        _assert_bit_identical(cold, warm)
        assert warm.state.runtime.level == "request"

    def test_replay_after_json_round_trip(self, base_request, cold):
        wire = json.dumps(cold.state.to_dict())
        state = SolveState.from_dict(json.loads(wire))
        warm = solve(replace(base_request, warm_start=state))
        _assert_bit_identical(cold, warm)
        # a deserialized state has no stored outcome, so the replay
        # downgrades to the (still bit-exact) stage1 level
        assert warm.state.runtime.level == "stage1"


class TestRatePerturbed:
    def test_bit_identical_to_cold(self, base_request, cold, scenario):
        wl = replace(scenario.workload,
                     arrival_rates=scenario.workload.arrival_rates
                     * RATE_BUMP)
        perturbed = replace(base_request, workload=wl)
        cold_p = solve(perturbed)
        warm_p = solve(replace(perturbed, warm_start=cold.state))
        _assert_bit_identical(cold_p, warm_p)
        assert warm_p.state.runtime.level == "stage1"

    def test_chained_ticks_stay_exact(self, base_request, scenario):
        """A rolling chain of rate changes never drifts from cold."""
        state = None
        rng = np.random.default_rng(7)
        for _ in range(4):
            factors = rng.uniform(0.8, 1.2,
                                  scenario.workload.n_task_types)
            wl = replace(scenario.workload,
                         arrival_rates=scenario.workload.arrival_rates
                         * factors)
            req = replace(base_request, workload=wl)
            warm = solve(replace(req, warm_start=state))
            cold_ref = solve(req)
            _assert_bit_identical(cold_ref, warm)
            state = warm.state


class TestCapPerturbed:
    def test_default_options_bit_identical(self, base_request, cold,
                                           scenario):
        cap = scenario.p_const * CAP_SHRINK
        perturbed = replace(base_request, p_const=cap)
        cold_p = solve(perturbed)
        warm_p = solve(replace(perturbed, warm_start=cold.state))
        _assert_bit_identical(cold_p, warm_p)
        assert warm_p.state.runtime.level == "structure"

    def test_warm_seed_heuristic_stays_feasible(self, scenario):
        """Opt-in seeding may land on a nearby optimum — never an
        invalid or wildly different one."""
        options = SolveOptions(warm_seed=True)
        base = SolveRequest(scenario.datacenter, scenario.workload,
                            scenario.p_const, options=options)
        first = solve(base)
        cap = scenario.p_const * CAP_SHRINK
        perturbed = replace(base, p_const=cap)
        cold_p = solve(perturbed)
        warm_p = solve(replace(perturbed, warm_start=first.state))
        warm_p.verify(scenario.datacenter, cap)
        assert warm_p.reward_rate \
            == pytest.approx(cold_p.reward_rate, rel=0.02)


class TestSolveStateSerialization:
    def test_round_trip_preserves_fields(self, cold):
        state = SolveState.from_dict(cold.state.to_dict())
        assert state.method == cold.state.method
        assert state.digests == cold.state.digests
        assert state.t_crac_out == cold.state.t_crac_out
        assert state.objective == cold.state.objective
        assert state.runtime is None

    def test_double_round_trip_is_stable(self, cold):
        once = cold.state.to_dict()
        twice = SolveState.from_dict(once).to_dict()
        assert once == twice

    def test_unknown_schema_rejected(self, cold):
        doc = cold.state.to_dict()
        doc["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            SolveState.from_dict(doc)

    def test_pickle_drops_runtime(self, cold):
        import pickle

        clone = pickle.loads(pickle.dumps(cold.state))
        assert clone.runtime is None
        assert clone.digests == cold.state.digests


class TestDigests:
    def test_rate_change_moves_only_request(self, scenario):
        opt = SolveOptions()
        a = compute_digests(scenario.datacenter, scenario.workload,
                            scenario.p_const, opt)
        wl = replace(scenario.workload,
                     arrival_rates=scenario.workload.arrival_rates * 1.1)
        b = compute_digests(scenario.datacenter, wl, scenario.p_const, opt)
        assert a.structure == b.structure
        assert a.stage1 == b.stage1
        assert a.request != b.request

    def test_cap_change_moves_stage1_not_structure(self, scenario):
        opt = SolveOptions()
        a = compute_digests(scenario.datacenter, scenario.workload,
                            scenario.p_const, opt)
        b = compute_digests(scenario.datacenter, scenario.workload,
                            scenario.p_const * 0.9, opt)
        assert a.structure == b.structure
        assert a.stage1 != b.stage1

    def test_option_change_moves_structure(self, scenario):
        a = compute_digests(scenario.datacenter, scenario.workload,
                            scenario.p_const, SolveOptions())
        b = compute_digests(scenario.datacenter, scenario.workload,
                            scenario.p_const, SolveOptions(psi=25.0))
        assert a.structure != b.structure

    def test_warm_seed_flag_does_not_move_digests(self, scenario):
        """The heuristic toggle must not invalidate stored states."""
        a = compute_digests(scenario.datacenter, scenario.workload,
                            scenario.p_const, SolveOptions())
        b = compute_digests(scenario.datacenter, scenario.workload,
                            scenario.p_const, SolveOptions(warm_seed=True))
        assert a == b


class TestBestPsiWarm:
    def test_children_replay_bit_identically(self, scenario):
        req = SolveRequest(scenario.datacenter, scenario.workload,
                           scenario.p_const)
        cold_r = solve(req, method="best_psi")
        warm_r = solve(replace(req, warm_start=cold_r.state),
                       method="best_psi")
        assert set(cold_r.by_psi) == set(warm_r.by_psi)
        for psi in cold_r.by_psi:
            _assert_bit_identical(cold_r.by_psi[psi], warm_r.by_psi[psi])
        assert set(warm_r.state.children) == {"25.0", "50.0"}

    def test_wrong_method_state_is_ignored(self, scenario, cold):
        req = SolveRequest(scenario.datacenter, scenario.workload,
                           scenario.p_const, warm_start=cold.state)
        result = solve(req, method="baseline")
        ref = solve(replace(req, warm_start=None), method="baseline")
        assert result.reward_rate == ref.reward_rate


class TestGenericReplay:
    def test_identical_baseline_request_replays(self, scenario):
        req = SolveRequest(scenario.datacenter, scenario.workload,
                           scenario.p_const)
        first = solve(req, method="baseline")
        again = solve(replace(req, warm_start=first.state),
                      method="baseline")
        assert again.outcome is first.outcome

    def test_identical_exact_request_replays(self):
        from repro.datacenter import build_datacenter, power_bounds
        from repro.datacenter.coretypes import shrunken_node_types
        from repro.thermal import attach_thermal_model
        from repro.workload import generate_workload

        rng = np.random.default_rng(0)
        dc = build_datacenter(n_nodes=3, n_crac=2,
                              node_types=shrunken_node_types(2), rng=rng,
                              nodes_per_rack=3)
        attach_thermal_model(dc, rng=rng)
        wl = generate_workload(dc, rng, n_task_types=4)
        req = SolveRequest(dc, wl, power_bounds(dc).p_const,
                           options=SolveOptions(temp_step=6.0))
        first = solve(req, method="exact")
        again = solve(replace(req, warm_start=first.state), method="exact")
        assert again.outcome is first.outcome
