"""One-call validation of any first-step solution.

Every technique in the library (three-stage, baseline, server-level,
exact, minpower) produces the same decision triple — CRAC outlet
temperatures, per-core P-states, desired rates — and must satisfy the
same constraints.  :func:`validate_solution` checks all of them against
the *exact* models (steady-state thermals, clamped Eq. 3 CRAC power),
returning a structured report instead of raising, so tests, benchmarks
and users audit solutions uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.datacenter.power import total_power
from repro.workload.tasktypes import Workload

__all__ = ["ValidationReport", "validate_solution"]


@dataclass
class ValidationReport:
    """Outcome of validating one solution.

    ``violations`` is empty iff the solution is feasible; each entry is
    a human-readable description with the measured magnitude.
    """

    total_power_kw: float
    power_cap_kw: float
    worst_redline_margin_c: float
    reward_rate: float
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_invalid(self) -> None:
        """Raise ``AssertionError`` listing every violation."""
        if self.violations:
            raise AssertionError("; ".join(self.violations))


def validate_solution(datacenter: DataCenter, workload: Workload,
                      p_const: float, t_crac_out: np.ndarray,
                      pstates: np.ndarray, tc: np.ndarray,
                      tol: float = 1e-6) -> ValidationReport:
    """Check every constraint of Eq. 7 at an integer solution.

    Verified against the exact (nonlinear, clamped) models:

    1. per-core utilization ≤ 1 (Eq. 7 constraint 1);
    2. no rate on a (type, core) pair that misses its deadline or cannot
       run (constraint 2);
    3. per-type service ≤ arrival rate (constraint 3);
    4. total power ≤ cap at the resolved steady state (constraint 4);
    5. all inlet temperatures ≤ redlines (constraint 5);
    6. structural sanity: P-state indices in range, rates non-negative.
    """
    t_crac_out = np.asarray(t_crac_out, dtype=float)
    pstates = np.asarray(pstates, dtype=int)
    tc = np.asarray(tc, dtype=float)
    violations: list[str] = []
    eta = workload.n_pstates

    # 6. structure
    if pstates.shape != (datacenter.n_cores,):
        raise ValueError("pstates shape mismatch")
    if tc.shape != (workload.n_task_types, datacenter.n_cores):
        raise ValueError("tc shape mismatch")
    if np.any(pstates < 0) or np.any(pstates >= eta):
        # unusable decision vector: report without evaluating the models
        return ValidationReport(
            total_power_kw=float("nan"), power_cap_kw=float(p_const),
            worst_redline_margin_c=float("nan"), reward_rate=float("nan"),
            violations=["P-state index out of range"])
    if tc.min() < -tol:
        violations.append(f"negative desired rate ({tc.min():.3e})")

    # 1 & 2. utilization and deadlines
    ecs = workload.ecs[:, datacenter.core_type, pstates]
    misplaced = (tc > tol) & (ecs <= 0.0)
    if misplaced.any():
        violations.append(
            f"{int(misplaced.sum())} rates on cores that cannot run the type")
    with np.errstate(divide="ignore", invalid="ignore"):
        util = np.where(ecs > 0, tc / np.maximum(ecs, 1e-300), 0.0).sum(axis=0)
    if util.max() > 1.0 + tol:
        violations.append(
            f"core over-utilized ({util.max():.6f} > 1)")
    for i in range(workload.n_task_types):
        for jtype in range(len(datacenter.node_types)):
            for k in range(eta):
                if workload.ecs[i, jtype, k] <= 0:
                    continue
                if workload.can_meet_deadline(i, jtype, k):
                    continue
                mask = (datacenter.core_type == jtype) & (pstates == k)
                if np.any(tc[i, mask] > tol):
                    violations.append(
                        f"type {i} scheduled on (node type {jtype}, "
                        f"P{k}) which misses its deadline")

    # 3. arrival rates
    served = tc.sum(axis=1)
    over = served - workload.arrival_rates
    if over.max() > tol * max(1.0, float(workload.arrival_rates.max())):
        i = int(over.argmax())
        violations.append(
            f"type {i} served above its arrival rate "
            f"({served[i]:.4f} > {workload.arrival_rates[i]:.4f})")

    # 4 & 5. power and thermals at the exact steady state
    node_power = datacenter.node_power_kw(pstates)
    model = datacenter.require_thermal()
    margin = model.redline_margin(t_crac_out, node_power,
                                  datacenter.redline_c)
    worst_margin = float(margin.min())
    if worst_margin < -tol:
        violations.append(
            f"redline violated by {-worst_margin:.4f} C at unit "
            f"{int(margin.argmin())}")
    breakdown = total_power(datacenter, t_crac_out, node_power)
    if breakdown.total > p_const + tol * max(1.0, p_const):
        violations.append(
            f"power cap violated ({breakdown.total:.3f} kW > "
            f"{p_const:.3f} kW)")

    reward = float(workload.rewards @ served)
    return ValidationReport(
        total_power_kw=breakdown.total,
        power_cap_kw=float(p_const),
        worst_redline_margin_c=worst_margin,
        reward_rate=reward,
        violations=violations,
    )
