"""Shared fixtures: small seeded rooms and workloads.

Scenario generation involves two LP solves (interference + power bounds),
so the expensive fixtures are session-scoped; tests must not mutate them
(assignments return fresh arrays, so this is natural).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datacenter import build_datacenter
from repro.experiments import PAPER_SET_1, generate_scenario, scaled_down
from repro.thermal import attach_thermal_model
from repro.workload import generate_workload

#: Seed used by the default fixtures; tests that need variation derive
#: their own generators.
SEED = 20120521  # IPDPSW 2012 conference date


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the tests/golden/data baselines from the current "
             "code instead of comparing against them")


@pytest.fixture(scope="session")
def small_dc():
    """A 20-node, 3-CRAC room with its thermal model attached."""
    rng = np.random.default_rng(SEED)
    dc = build_datacenter(n_nodes=20, n_crac=3, rng=rng)
    attach_thermal_model(dc, rng=rng)
    return dc


@pytest.fixture(scope="session")
def small_workload(small_dc):
    """Workload matched to ``small_dc`` (8 task types, paper knobs)."""
    rng = np.random.default_rng(SEED + 1)
    return generate_workload(small_dc, rng)


@pytest.fixture(scope="session")
def scenario():
    """A complete small scenario (room + workload + power cap)."""
    return generate_scenario(scaled_down(PAPER_SET_1, 20), SEED)


@pytest.fixture(scope="session")
def assignment(scenario):
    """A three-stage assignment on ``scenario`` (psi = 50)."""
    from repro.core import three_stage_assignment

    return three_stage_assignment(scenario.datacenter, scenario.workload,
                                  scenario.p_const, psi=50.0)


@pytest.fixture(scope="session")
def baseline(scenario):
    """Baseline solution on ``scenario``."""
    from repro.core import solve_baseline

    sol, _ = solve_baseline(scenario.datacenter, scenario.workload,
                            scenario.p_const)
    return sol
