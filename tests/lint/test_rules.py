"""Golden-file tests: every rule's bad fixture yields exactly the
expected (code, line) findings; every good fixture is clean."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, select_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: code -> expected 1-based lines in the matching ``<code>_bad.py``.
EXPECTED = {
    "RL001": [7, 9, 10, 11],
    "RL002": [14, 19],
    "RL003": [9, 10, 11, 12, 13, 14],
    "RL004": [9, 10],
    "RL010": [4, 8, 13],
    "RL011": [5, 9, 13],
    "RL020": [7, 14],
    "RL021": [4, 9, 14],
    "RL022": [7, 8],
    # dataflow tier: interprocedural rules still pin exact lines
    "RL030": [9, 10, 12],
    "RL031": [5, 6],
    "RL040": [17, 22, 22],      # line 22 reaches two distinct sinks
    "RL050": [11],
}


def _lint_fixture(name: str, code: str):
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    rules = select_rules(select=[code])
    return lint_paths([path], rules=rules, config=LintConfig())


@pytest.mark.parametrize("code", sorted(EXPECTED))
class TestGoldenPairs:
    def test_bad_fixture_lines(self, code):
        report = _lint_fixture(f"{code.lower()}_bad.py", code)
        got = [(f.code, f.line) for f in report.findings]
        assert got == [(code, line) for line in EXPECTED[code]]

    def test_good_fixture_clean(self, code):
        report = _lint_fixture(f"{code.lower()}_good.py", code)
        assert report.findings == []

    def test_bad_fixture_fails_under_full_rule_set(self, code):
        report = lint_paths([FIXTURES / f"{code.lower()}_bad.py"],
                            config=LintConfig())
        assert {f.code for f in report.findings} >= {code}


class TestPr3BugClass:
    """Acceptance: the original cache-key defect is caught and the
    message routes the reader to the canonicalizer."""

    def test_json_dumps_set_cache_key_is_flagged(self):
        report = _lint_fixture("rl002_bad.py", "RL002")
        cache_key_finding = next(
            f for f in report.findings if f.line == 14)
        assert "canonical_json" in cache_key_finding.message
        assert "PYTHONHASHSEED" in cache_key_finding.message

    def test_direct_set_payload_is_flagged(self):
        report = _lint_fixture("rl002_bad.py", "RL002")
        assert any(f.line == 19 for f in report.findings)


class TestMetaheuristicPattern:
    """Acceptance: an unseeded metaheuristic search loop — the bug class
    the PR-7 solver backends must never reintroduce — trips RL003, and
    the seeded variant is clean."""

    def test_unseeded_search_loop_is_flagged(self):
        report = _lint_fixture("metaheuristic_bad.py", "RL003")
        lines = [f.line for f in report.findings]
        assert lines == [16, 20]

    def test_seeded_search_loop_is_clean(self):
        report = _lint_fixture("metaheuristic_good.py", "RL003")
        assert report.findings == []


class TestRuleMetadata:
    def test_every_expected_code_is_registered(self):
        from repro.lint import all_rules

        codes = {cls.code for cls in all_rules()}
        assert codes >= set(EXPECTED)

    def test_catalog_has_categories_and_descriptions(self):
        from repro.lint import rule_catalog

        for code, name, category, description in rule_catalog():
            assert code.startswith("RL")
            assert name and description
            assert category in ("determinism", "physics", "hygiene")

    def test_duplicate_code_rejected(self):
        from repro.lint import RuleVisitor, register

        class Dupe(RuleVisitor):
            code = "RL001"
            name = "dupe"

        with pytest.raises(ValueError, match="duplicate"):
            register(Dupe)

    def test_malformed_code_rejected(self):
        from repro.lint import RuleVisitor, register

        class Bad(RuleVisitor):
            code = "X1"
            name = "bad"

        with pytest.raises(ValueError, match="RL0xx"):
            register(Bad)
