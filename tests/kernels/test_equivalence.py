"""Property-based equivalence of the kernels (docs/KERNELS.md contract).

Randomized rooms of varying node/CRAC counts and core types, randomized
operating points, and — where the contract says *bit-identical* —
``np.array_equal`` assertions, not tolerances.  The batched steady
state is the one tolerance-bound op (BLAS accumulation order).

Also the metamorphic checks: permutation equivariance of the batch
APIs, within-node core-permutation invariance of Eq. 1, and cap
monotonicity of the Stage 1 objective.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.core.stage1 import build_arr_functions, solve_stage1
from repro.datacenter import build_datacenter
from repro.datacenter.coretypes import shrunken_node_types
from repro.datacenter.power import power_bounds
from repro.kernels import reference, vectorized
from repro.kernels.tables import core_power_table
from repro.thermal import attach_thermal_model
from repro.workload import generate_workload

from tests.conftest import SEED

RELAXED = settings(max_examples=20, deadline=None,
                   suppress_health_check=[HealthCheck.function_scoped_fixture])

#: (n_nodes, n_crac, node_types factory) — varied shapes, including the
#: shrunken catalog the exact solver uses.
ROOM_SHAPES = [
    (12, 2, lambda: None),
    (9, 3, lambda: shrunken_node_types(4)),
    (16, 1, lambda: None),
]


@functools.lru_cache(maxsize=None)
def room(index: int):
    """Room ``index`` of the pool, with thermal model, workload, ARRs."""
    n_nodes, n_crac, types = ROOM_SHAPES[index]
    rng = np.random.default_rng(SEED + 100 * index)
    dc = build_datacenter(n_nodes=n_nodes, n_crac=n_crac,
                          node_types=types(), rng=rng)
    attach_thermal_model(dc, rng=rng)
    workload = generate_workload(dc, rng)
    arrs = build_arr_functions(dc, workload, psi=50.0)
    return dc, workload, arrs


room_indices = st.integers(0, len(ROOM_SHAPES) - 1)
seeds = st.integers(0, 2**32 - 1)


def _random_pstates(dc, rng, shape=()):
    eta = core_power_table(dc).n_pstates[dc.core_type]
    return rng.integers(0, eta, size=shape + (dc.n_cores,))


class TestHeatFlowBatch:
    @given(index=room_indices, seed=seeds, batch=st.integers(1, 9))
    @RELAXED
    def test_kernels_agree_within_tolerance(self, index, seed, batch):
        dc, _, _ = room(index)
        model = dc.require_thermal()
        rng = np.random.default_rng(seed)
        t = rng.uniform(10.0, 25.0, size=(batch, model.n_crac))
        p = rng.uniform(0.0, 1.5, size=(batch, dc.n_nodes))
        results = {}
        for name in kernels.available_kernels():
            with kernels.use_kernel(name):
                results[name] = model.steady_state_batch(t, p)
        ref, vec = results["reference"], results["vectorized"]
        assert np.allclose(ref.t_in, vec.t_in, rtol=1e-9, atol=1e-9)
        assert np.allclose(ref.t_out, vec.t_out, rtol=1e-9, atol=1e-9)
        assert np.allclose(ref.crac_heat_kw, vec.crac_heat_kw,
                           rtol=1e-9, atol=1e-9)

    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_batch_rows_match_scalar_steady_state(self, index, seed):
        dc, _, _ = room(index)
        model = dc.require_thermal()
        rng = np.random.default_rng(seed)
        t = rng.uniform(10.0, 25.0, size=(4, model.n_crac))
        p = rng.uniform(0.0, 1.5, size=(4, dc.n_nodes))
        batch = model.steady_state_batch(t, p)
        for b in range(4):
            scalar = model.steady_state(t[b], p[b])
            row = batch.row(b)
            assert np.allclose(row.t_in, scalar.t_in, rtol=1e-9, atol=1e-9)
            assert np.allclose(row.t_out, scalar.t_out, rtol=1e-9, atol=1e-9)
            assert np.allclose(row.crac_heat_kw, scalar.crac_heat_kw,
                               rtol=1e-9, atol=1e-9)

    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_broadcast_single_outlet_vector(self, index, seed):
        dc, _, _ = room(index)
        model = dc.require_thermal()
        rng = np.random.default_rng(seed)
        t = rng.uniform(10.0, 25.0, size=model.n_crac)
        p = rng.uniform(0.0, 1.5, size=(3, dc.n_nodes))
        batch = model.steady_state_batch(t, p)
        for b in range(3):
            scalar = model.steady_state(t, p[b])
            assert np.allclose(batch.t_in[b], scalar.t_in,
                               rtol=1e-9, atol=1e-9)

    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_censored_model_agrees_across_kernels(self, index, seed):
        """Fault-censored (dead-node) subviews keep kernel equivalence."""
        dc, _, _ = room(index)
        model = dc.require_thermal()
        rng = np.random.default_rng(seed)
        n_dead = int(rng.integers(1, max(2, dc.n_nodes // 3)))
        dead = rng.choice(dc.n_nodes, size=n_dead, replace=False)
        reduced = model.without_nodes(dead)
        t = rng.uniform(10.0, 25.0, size=(3, reduced.n_crac))
        p = rng.uniform(0.0, 1.5, size=(3, reduced.n_nodes))
        results = {}
        for name in kernels.available_kernels():
            with kernels.use_kernel(name):
                results[name] = reduced.steady_state_batch(t, p)
        ref, vec = results["reference"], results["vectorized"]
        assert np.allclose(ref.t_in, vec.t_in, rtol=1e-9, atol=1e-9)
        assert np.allclose(ref.t_out, vec.t_out, rtol=1e-9, atol=1e-9)


class TestNodePowerExact:
    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_single_vector_bit_identical(self, index, seed):
        dc, _, _ = room(index)
        rng = np.random.default_rng(seed)
        ps = _random_pstates(dc, rng)
        assert np.array_equal(reference.node_power_kw(dc, ps),
                              vectorized.node_power_kw(dc, ps))

    @given(index=room_indices, seed=seeds, batch=st.integers(1, 6))
    @RELAXED
    def test_batch_bit_identical(self, index, seed, batch):
        dc, _, _ = room(index)
        rng = np.random.default_rng(seed)
        ps = _random_pstates(dc, rng, shape=(batch,))
        ref = reference.node_power_batch(dc, ps)
        vec = vectorized.node_power_batch(dc, ps)
        assert np.array_equal(ref, vec)
        for b in range(batch):
            assert np.array_equal(vec[b], reference.node_power_kw(dc, ps[b]))


class TestStage2Exact:
    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_conversion_bit_identical(self, index, seed):
        """Round-up + trim agree per core, including forced trims."""
        dc, _, _ = room(index)
        rng = np.random.default_rng(seed)
        tab = core_power_table(dc)
        ps = _random_pstates(dc, rng)
        core_power = tab.power[dc.core_type, ps]
        # perturb off the ladder so round-up has real work to do
        core_power = core_power * rng.uniform(0.85, 1.0, size=dc.n_cores)
        budget = dc.node_power_kw(ps)
        # shave some budgets below the round-up cost to exercise the trim
        shave = rng.random(dc.n_nodes) < 0.5
        budget = np.where(shave, budget - 0.3 * rng.random(dc.n_nodes),
                          budget)
        ref = reference.convert_power_to_pstates(dc, core_power, budget)
        vec = vectorized.convert_power_to_pstates(dc, core_power, budget)
        assert np.array_equal(ref, vec)


class TestStage1Exact:
    @given(index=room_indices)
    @RELAXED
    def test_assembly_bit_identical(self, index):
        dc, _, arrs = room(index)
        ref = reference.assemble_segments(dc, arrs)
        vec = vectorized.assemble_segments(dc, arrs)
        for r, v in zip(ref, vec):
            assert np.array_equal(r, v)

    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_distribute_bit_identical(self, index, seed):
        dc, _, arrs = room(index)
        rng = np.random.default_rng(seed)
        tab = core_power_table(dc)
        tops = np.asarray([arrs[t].concave.x[-1]
                           for t in dc.node_type_index])
        node_core_power = rng.uniform(0.0, 1.0, size=dc.n_nodes) \
            * tops * tab.node_n_cores
        # sprinkle exact zeros (idle nodes are the common case)
        node_core_power[rng.random(dc.n_nodes) < 0.25] = 0.0
        ref = reference.distribute_node_power(dc, arrs, node_core_power)
        vec = vectorized.distribute_node_power(dc, arrs, node_core_power)
        assert np.array_equal(ref, vec)

    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_distribute_conserves_node_totals(self, index, seed):
        dc, _, arrs = room(index)
        rng = np.random.default_rng(seed)
        tab = core_power_table(dc)
        tops = np.asarray([arrs[t].concave.x[-1]
                           for t in dc.node_type_index])
        node_core_power = rng.uniform(0.0, 1.0, size=dc.n_nodes) \
            * tops * tab.node_n_cores
        core = vectorized.distribute_node_power(dc, arrs, node_core_power)
        sums = np.bincount(dc.core_node, weights=core,
                           minlength=dc.n_nodes)
        assert np.allclose(sums, node_core_power, rtol=1e-9, atol=1e-9)


class TestMetamorphic:
    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_batch_row_permutation_equivariance(self, index, seed):
        """Permuting batch rows permutes every output identically."""
        dc, _, _ = room(index)
        model = dc.require_thermal()
        rng = np.random.default_rng(seed)
        t = rng.uniform(10.0, 25.0, size=(6, model.n_crac))
        p = rng.uniform(0.0, 1.5, size=(6, dc.n_nodes))
        perm = rng.permutation(6)
        straight = model.steady_state_batch(t, p)
        shuffled = model.steady_state_batch(t[perm], p[perm])
        assert np.array_equal(straight.t_in[perm], shuffled.t_in)
        assert np.array_equal(straight.t_out[perm], shuffled.t_out)
        assert np.array_equal(straight.crac_heat_kw[perm],
                              shuffled.crac_heat_kw)

    @given(index=room_indices, seed=seeds)
    @RELAXED
    def test_within_node_core_permutation_invariance(self, index, seed):
        """Cores of a node are identical: shuffling their P-states
        within the node cannot change any node power."""
        dc, _, _ = room(index)
        rng = np.random.default_rng(seed)
        ps = _random_pstates(dc, rng)
        tab = core_power_table(dc)
        shuffled = ps.copy()
        for j in range(dc.n_nodes):
            first = int(tab.node_first_core[j])
            n = int(tab.node_n_cores[j])
            shuffled[first:first + n] = \
                rng.permutation(shuffled[first:first + n])
        a = vectorized.node_power_kw(dc, ps)
        b = vectorized.node_power_kw(dc, shuffled)
        assert np.allclose(a, b, rtol=1e-12, atol=1e-12)


class TestCapMonotonicity:
    def test_raising_pconst_never_reduces_stage1_objective(self):
        """The feasible set grows with the cap, so the optimum cannot
        drop — a solver bug (or a kernel divergence) breaks this first."""
        dc, workload, _ = room(0)
        bounds = power_bounds(dc)
        caps = np.linspace(bounds.p_min * 1.05, bounds.p_max, 4)
        objectives = []
        for cap in caps:
            solution, _ = solve_stage1(dc, workload, p_const=float(cap))
            objectives.append(solution.objective)
        diffs = np.diff(np.asarray(objectives))
        assert np.all(diffs >= -1e-6)
