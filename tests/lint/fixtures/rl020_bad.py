"""RL020 bad: handlers that swallow fault/solver errors."""


def swallow_everything(solve):
    try:
        return solve()
    except:                                           # line 7: bare
        return None


def swallow_broad(solve):
    try:
        return solve()
    except Exception:                                 # line 14: broad
        return None
