"""Dynamic scheduler tracking — contribution 4, quantified.

The second-step scheduler's goal is "the ratio ATC(i,k)/TC(i,k) as close
as possible to 1".  This benchmark replays a Poisson trace through the
scheduler and prints how well the achieved rates track the desired
rates, plus the realized share of the planned reward.
"""

import numpy as np

from repro.core import three_stage_assignment
from repro.simulate import simulate_trace
from repro.workload import generate_trace


def bench_scheduler_tracking(benchmark, capsys, bench_scenario, scale):
    sc = bench_scenario
    plan = three_stage_assignment(sc.datacenter, sc.workload, sc.p_const,
                                  psi=50.0)
    trace = generate_trace(sc.workload, scale.des_horizon,
                           np.random.default_rng(17))

    metrics = benchmark.pedantic(
        simulate_trace, args=(sc.datacenter, sc.workload, plan.tc,
                              plan.pstates, trace),
        kwargs={"duration": scale.des_horizon}, rounds=1, iterations=1)

    ratios = metrics.rate_ratios()
    realized = metrics.reward_rate / plan.reward_rate
    assert realized > 0.6

    with capsys.disabled():
        print()
        print(f"scheduler tracking over {len(trace)} tasks / "
              f"{scale.des_horizon:.0f}s")
        print(f"  planned reward rate : {plan.reward_rate:10.1f}/s")
        print(f"  achieved reward rate: {metrics.reward_rate:10.1f}/s "
              f"({100 * realized:.1f}%)")
        print(f"  dropped tasks       : {metrics.dropped.sum()} "
              f"of {len(trace)}")
        print(f"  ATC/TC percentiles  : p25 {np.percentile(ratios, 25):.2f}"
              f"  p50 {np.percentile(ratios, 50):.2f}"
              f"  p75 {np.percentile(ratios, 75):.2f}")
        print(f"  mean |ATC - TC|     : {metrics.tracking_error():.4f} "
              "tasks/s per (type, core)")
