"""Node consolidation — relaxing the "nodes never power off" assumption.

Section III.C keeps every chassis powered ("we are not considering the
case where compute nodes can be turned off"), so base power — disks,
fans, boards — is a fixed tax even on nodes whose cores the optimizer
leaves dark.  Section II names server consolidation (Tolia et al. [30])
as a complementary technique "in combination with our assignment
technique".  This module implements that combination:

1. run the three-stage assignment as usual;
2. any node whose cores all ended up off is powered down: its base
   power is credited back to the budget (its airflow is assumed
   maintained — passively or by row-level fans — so the Appendix B
   interference coefficients stay valid; see the docstring note);
3. re-run the assignment with those nodes' cores excluded and their
   base power zeroed — the freed kilowatts buy higher P-states (or more
   active cores) elsewhere;
4. repeat until the powered-down set stops growing.

The powered-down set only ever grows, so termination is guaranteed in
at most ``NCN`` iterations (in practice 2-3).

.. note::
   Powering a chassis down in reality also removes its fan flow, which
   would alter the room's flow field and invalidate the measured
   cross-interference coefficients.  We keep flows fixed — equivalent to
   assuming chassis fans keep spinning (their draw is part of the base
   power we save, so the savings reported here are optimistic by the
   fan share).  A flow-coupled model would need per-configuration
   coefficient regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.assignment import AssignmentResult
from repro.core.stage1 import solve_stage1
from repro.core.stage2 import solve_stage2
from repro.core.stage3 import solve_stage3
from repro.datacenter.builder import DataCenter
from repro.workload.tasktypes import Workload

__all__ = ["ConsolidationResult", "consolidate"]


@dataclass
class ConsolidationResult:
    """Output of the consolidation loop.

    Attributes
    ----------
    assignment:
        Final :class:`AssignmentResult` (on the modified room).
    powered_down:
        Boolean mask of chassis that were switched off.
    base_power_saved_kw:
        Base power credited back by powering those chassis down.
    iterations:
        Assignment solves performed (>= 1).
    baseline_reward:
        Reward of the plain (no-consolidation) assignment, for the
        uplift comparison.
    datacenter:
        The modified room (zeroed base power on powered-down nodes);
        needed to validate/simulate the final assignment consistently.
    """

    assignment: AssignmentResult
    powered_down: np.ndarray
    base_power_saved_kw: float
    iterations: int
    baseline_reward: float
    datacenter: DataCenter

    @property
    def reward_uplift_pct(self) -> float:
        if self.baseline_reward <= 0:
            return float("nan")
        return 100.0 * (self.assignment.reward_rate
                        - self.baseline_reward) / self.baseline_reward


def _with_bases_zeroed(datacenter: DataCenter,
                       mask: np.ndarray) -> DataCenter:
    """A copy of the room with base power zeroed on masked nodes.

    Node specs are shared per type, so masked nodes get a private spec
    copy; the thermal model carries over unchanged (same flows).
    """
    new_nodes = []
    for node in datacenter.nodes:
        if mask[node.index]:
            spec = replace(node.spec, base_power_kw=0.0)
            node = replace(node, spec=spec)
        new_nodes.append(node)
    dc = DataCenter(node_types=list(datacenter.node_types),
                    nodes=new_nodes, cracs=list(datacenter.cracs),
                    layout=datacenter.layout,
                    node_redline_c=datacenter.node_redline_c,
                    crac_redline_c=datacenter.crac_redline_c)
    dc.thermal = datacenter.thermal
    return dc


def _assign(datacenter: DataCenter, workload: Workload, p_const: float,
            psi: float, disabled: np.ndarray) -> AssignmentResult:
    stage1, trace = solve_stage1(datacenter, workload, p_const=p_const,
                                 psi=psi, disabled_nodes=disabled)
    stage2 = solve_stage2(datacenter, stage1)
    stage3 = solve_stage3(datacenter, workload, stage2.pstates)
    return AssignmentResult(
        psi=psi, t_crac_out=stage1.t_crac_out, pstates=stage2.pstates,
        tc=stage3.tc, reward_rate=stage3.reward_rate, stage1=stage1,
        stage2=stage2, stage3=stage3, search=trace)


def consolidate(datacenter: DataCenter, workload: Workload,
                p_const: float, psi: float = 50.0,
                max_iterations: int = 10) -> ConsolidationResult:
    """Run the assignment + power-down loop to a fixed point."""
    n = datacenter.n_nodes
    powered_down = np.zeros(n, dtype=bool)
    current_dc = datacenter
    result = _assign(current_dc, workload, p_const, psi, powered_down)
    baseline_reward = result.reward_rate
    iterations = 1
    off_state = np.asarray([datacenter.node_types[t].off_pstate
                            for t in datacenter.core_type])
    while iterations < max_iterations:
        dark = np.ones(n, dtype=bool)
        active = result.pstates != off_state
        for node in datacenter.nodes:
            sl = slice(node.first_core, node.first_core + node.n_cores)
            dark[node.index] = not active[sl].any()
        newly = dark & ~powered_down
        if not newly.any():
            break
        powered_down |= newly
        current_dc = _with_bases_zeroed(datacenter, powered_down)
        result = _assign(current_dc, workload, p_const, psi, powered_down)
        iterations += 1
    saved = float(datacenter.node_base_power[powered_down].sum())
    return ConsolidationResult(
        assignment=result,
        powered_down=powered_down,
        base_power_saved_kw=saved,
        iterations=iterations,
        baseline_reward=baseline_reward,
        datacenter=current_dc,
    )
