"""Applying faults to a room: degraded-inventory views.

A fault changes what the optimizers are allowed to use, not the physics
code itself, so injection is *functional*: :func:`degraded_view` maps a
``(DataCenter, Workload, InventoryState)`` triple to a smaller/weaker
room that every existing solver, thermal model and simulator consumes
unchanged, plus the index maps needed to relate results back to the
full room.  Restoring on recovery is recomputing the view for the new
state — nothing is mutated, so recovery is exact.

Per fault kind:

* **Node crashes** — crashed nodes are dropped from the room
  (:meth:`~repro.datacenter.builder.DataCenter.restrict`) and from the
  thermal cross-interference coupling
  (:meth:`~repro.thermal.heatflow.HeatFlowModel.without_nodes`): a dark
  chassis adds no heat and acts as a passive air pass-through, which is
  exactly censoring the flow chain onto the survivors.
* **CRAC degradation / outage** — the unit keeps moving air (fans are
  independent of the cooling coil) but can no longer cool it fully:
  remaining capacity ``c`` raises the coldest reachable outlet
  temperature linearly across the admissible range,
  ``lo' = lo + (1 - c)(hi - lo)``; an outage (``c = 0``) pins the
  outlet at the warm end.  Every Stage-1 search, the baseline solvers
  and the power bounds read ``outlet_range_c``, so the degraded cooling
  capacity shifts the steady-state solve everywhere at once.
* **Power-cap drops** — callers scale the room budget via :meth:`DegradedView.cap`.
* **ECS drift** — the workload's ECS tensor is scaled by the state's
  ``ecs_factor`` (room-wide slowdown), which propagates to execution
  times, ARR functions and deadline feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.datacenter.crac import CRACUnit
from repro.faults.model import InventoryState
from repro.workload.tasktypes import Workload

__all__ = ["DegradedView", "degraded_view", "derated_cracs"]


def derated_cracs(datacenter: DataCenter,
                  capacity: np.ndarray) -> list[CRACUnit]:
    """CRAC list with outlet ranges narrowed to the remaining capacity.

    ``capacity[i] = 1`` leaves CRAC *i* untouched; ``0`` (outage) leaves
    only the warm end of its range reachable.
    """
    capacity = np.asarray(capacity, dtype=float)
    if capacity.shape != (datacenter.n_crac,):
        raise ValueError(
            f"need {datacenter.n_crac} capacity entries, got {capacity.shape}")
    if np.any(capacity < 0) or np.any(capacity > 1):
        raise ValueError("CRAC capacities must lie in [0, 1]")
    cracs: list[CRACUnit] = []
    for unit, c in zip(datacenter.cracs, capacity):
        if c >= 1.0:
            cracs.append(unit)
            continue
        lo, hi = unit.outlet_range_c
        cracs.append(replace(unit,
                             outlet_range_c=(lo + (1.0 - float(c)) * (hi - lo),
                                             hi)))
    return cracs


@dataclass
class DegradedView:
    """A room and workload as seen under one inventory state.

    Attributes
    ----------
    base:
        The full (healthy) room the view was derived from.
    state:
        The inventory state the view realizes.
    datacenter:
        The degraded room — surviving nodes only, derated CRACs, reduced
        thermal model attached.  When ``state`` is nominal this is
        ``base`` itself (same object), so healthy-path results are
        bit-identical to never having gone through the fault layer.
    workload:
        The (possibly ECS-drifted) workload matching ``datacenter``.
    node_map / core_map:
        ``node_map[j']`` / ``core_map[k']`` give the full-room index of
        degraded node ``j'`` / core ``k'``.
    """

    base: DataCenter
    state: InventoryState
    datacenter: DataCenter
    workload: Workload
    node_map: np.ndarray
    core_map: np.ndarray

    @property
    def is_identity(self) -> bool:
        """True when the view is the untouched base room."""
        return self.datacenter is self.base

    def cap(self, p_const: float) -> float:
        """Room power budget under the state's emergency cap factor."""
        return float(p_const) * self.state.power_cap_factor

    @property
    def kept_units(self) -> np.ndarray:
        """Full-room unit indices (CRACs first) present in the view."""
        return np.concatenate([np.arange(self.base.n_crac),
                               self.base.n_crac + self.node_map])

    def reduce_t_out(self, t_out_full: np.ndarray) -> np.ndarray:
        """Project a full-room outlet vector onto the view's units."""
        t = np.asarray(t_out_full, dtype=float)
        if t.shape != (self.base.n_units,):
            raise ValueError(
                f"expected {self.base.n_units} outlet temps, got {t.shape}")
        return t[self.kept_units]

    def expand_t_out(self, t_out_reduced: np.ndarray) -> np.ndarray:
        """Lift a view-space outlet vector back to the full room.

        Dead nodes are passive pass-throughs, so their temperatures are
        reconstructed exactly from the survivors'
        (:meth:`~repro.thermal.heatflow.HeatFlowModel.passive_unit_temps`)
        rather than guessed — the full-room state stays physically
        consistent across inventory changes.
        """
        t = np.asarray(t_out_reduced, dtype=float)
        if self.is_identity and t.shape == (self.base.n_units,):
            return t
        if t.shape != (self.datacenter.n_units,):
            raise ValueError(
                f"expected {self.datacenter.n_units} outlet temps, got "
                f"{t.shape}")
        out = np.empty(self.base.n_units)
        keep = self.kept_units
        out[keep] = t
        dead = self.state.dead_nodes
        if dead.size:
            model = self.base.require_thermal()
            out[self.base.n_crac + dead] = model.passive_unit_temps(dead, t)
        return out


def degraded_view(datacenter: DataCenter, workload: Workload,
                  state: InventoryState) -> DegradedView:
    """Realize one inventory state as a view on the room.

    With a nominal state the view *is* the base room and workload (same
    objects) — the chaos path then reproduces the healthy path
    bit-identically.  Otherwise the room is restricted to the survivors,
    its thermal coupling censored, its CRACs derated and its workload
    slowed, all derived from ``state`` alone so that recomputing the
    view at recovery time restores the original exactly.
    """
    n_nodes, n_crac = datacenter.n_nodes, datacenter.n_crac
    if state.node_dead_count.shape != (n_nodes,):
        raise ValueError(
            f"state covers {state.node_dead_count.shape[0]} nodes but the "
            f"room has {n_nodes}")
    if state.crac_capacity.shape != (n_crac,):
        raise ValueError(
            f"state covers {state.crac_capacity.shape[0]} CRACs but the "
            f"room has {n_crac}")
    if state.is_nominal:
        return DegradedView(base=datacenter, state=state,
                            datacenter=datacenter, workload=workload,
                            node_map=np.arange(n_nodes),
                            core_map=np.arange(datacenter.n_cores))

    base_model = datacenter.require_thermal()
    alive = state.node_alive
    if not alive.any():
        raise ValueError("every node is crashed; no degraded room exists")
    cracs = derated_cracs(datacenter, state.crac_capacity) \
        if np.any(state.crac_capacity < 1.0) else None
    restricted, node_map, core_map = datacenter.restrict(alive, cracs=cracs)
    if restricted is datacenter:
        # all nodes alive and CRACs untouched (pure cap/ECS faults):
        # restrict() returned the base room; reuse its thermal model.
        degraded_dc = datacenter
    else:
        degraded_dc = restricted
        dead = state.dead_nodes
        degraded_dc.thermal = (base_model.without_nodes(dead) if dead.size
                               else base_model)
    degraded_workload = workload
    if state.ecs_factor < 1.0:
        degraded_workload = replace(workload,
                                    ecs=workload.ecs * state.ecs_factor)
    return DegradedView(base=datacenter, state=state,
                        datacenter=degraded_dc, workload=degraded_workload,
                        node_map=node_map, core_map=core_map)
