"""Power-aware Stage 3 — desired rates under task-dependent power.

With the :class:`~repro.power.taskpower.TaskPowerModel` extension,
a core's power depends on *what* it runs, so the classic Stage 3 (which
trusts Stages 1-2 to have budgeted power for fully-busy cores at nominal
draw) can overshoot the cap when compute-heavy task types draw more
than nominal.  This solver re-introduces the power cap and the redlines
into the Stage 3 LP:

* variables: class rates ``u(i, g)`` exactly as in classic Stage 3, but
  classes are refined to (node, P-state) granularity when needed — here
  we keep per-(node type, P-state) classes and distribute rates equally,
  so each node's time-averaged power is linear in ``u``;
* the time-averaged power of a core is
  ``idle + sum_i u(i,g)/(n_g * ECS) * (factor_i - idle) * pi`` — linear;
* one power row (cap) and one row per unit (redline) complete the LP.

The result is the best deadline-feasible rate assignment that is *also*
power- and thermally-safe under the task-dependent draw.
"""

from __future__ import annotations


import numpy as np

from repro.core.stage3 import Stage3Solution
from repro.datacenter.builder import DataCenter
from repro.optimize.linprog import InfeasibleError, LinearProgram
from repro.power.taskpower import TaskPowerModel, expected_node_power
from repro.thermal.constraints import ThermalLinearization
from repro.workload.tasktypes import Workload

__all__ = ["solve_stage3_power_aware"]


def solve_stage3_power_aware(datacenter: DataCenter, workload: Workload,
                             pstates: np.ndarray,
                             task_power: TaskPowerModel,
                             linearization: ThermalLinearization,
                             p_const: float) -> Stage3Solution:
    """Stage 3 with task-dependent power, cap and redline rows.

    Parameters
    ----------
    pstates:
        Fixed per-core P-states (from Stage 2).
    task_power:
        The task-type power factors.
    linearization:
        Thermal linear view at the assignment's CRAC outlet temperatures
        (supplies the affine CRAC power and redline rows).
    p_const:
        Total power cap, kW.

    Raises
    ------
    InfeasibleError
        If even the all-idle room violates the cap (the idle draw of the
        chosen P-states plus base power exceeds ``p_const``).
    """
    pstates = np.asarray(pstates, dtype=int)
    if pstates.shape != (datacenter.n_cores,):
        raise ValueError("pstates shape mismatch")
    if task_power.n_task_types != workload.n_task_types:
        raise ValueError("task power model dimension mismatch")
    lin = linearization
    t_count = workload.n_task_types
    eta = workload.n_pstates
    n_types = len(datacenter.node_types)

    # nominal per-core P-state power and idle power
    nominal = np.empty(datacenter.n_cores)
    for t, spec in enumerate(datacenter.node_types):
        mask = datacenter.core_type == t
        nominal[mask] = np.asarray(spec.pstate_power_kw)[pstates[mask]]
    idle_core = task_power.idle_fraction * nominal
    idle_node = datacenter.node_base_power + np.bincount(
        datacenter.core_node, weights=idle_core,
        minlength=datacenter.n_nodes)

    # all-idle feasibility
    if np.any(lin.inlet_gain @ idle_node > lin.redline_rhs + 1e-9):
        raise InfeasibleError(
            "idle room already violates a redline at these P-states")
    idle_total = idle_node.sum() + lin.crac_power(idle_node)
    if idle_total > p_const + 1e-9:
        raise InfeasibleError(
            f"idle room draws {idle_total:.2f} kW > cap {p_const:.2f} kW")

    # classes and per-node class membership counts
    class_id = datacenter.core_type * eta + pstates
    present = np.unique(class_id)
    n_classes = present.size
    class_count = np.asarray([(class_id == c).sum() for c in present])
    class_key = [(int(c // eta), int(c % eta)) for c in present]
    # membership[j, g] = cores of class g in node j
    membership = np.zeros((datacenter.n_nodes, n_classes))
    for g, c in enumerate(present):
        members = class_id == c
        membership[:, g] = np.bincount(
            datacenter.core_node[members],
            minlength=datacenter.n_nodes)

    lp = LinearProgram(name="stage3-power-aware", maximize=True)
    var = np.full((t_count, n_classes), -1, dtype=int)
    # marginal node power per unit of u(i, g):
    # busy share per core = u / (n_g * ECS); extra draw over idle per
    # busy second = (factor_i - idle_fraction) * nominal_class
    marginal = np.zeros((t_count, n_classes))
    for g, (jtype, k) in enumerate(class_key):
        spec = datacenter.node_types[jtype]
        nominal_class = spec.pstate_power_kw[k]
        for i in range(t_count):
            speed = float(workload.ecs[i, jtype, k])
            if speed <= 0.0 or not workload.can_meet_deadline(i, jtype, k):
                continue
            var[i, g] = lp.add_variables(
                1, lb=0.0, objective=float(workload.rewards[i]))[0]
            marginal[i, g] = (float(task_power.factors[i])
                              - task_power.idle_fraction) \
                * nominal_class / (speed * class_count[g])
    if lp.num_variables == 0:
        tc = np.zeros((t_count, datacenter.n_cores))
        return Stage3Solution(tc=tc, reward_rate=0.0,
                              class_rates=np.zeros((t_count, n_classes)),
                              class_key=class_key)

    # classic constraints 1 and 3
    for g, (jtype, k) in enumerate(class_key):
        coeffs = {}
        for i in range(t_count):
            if var[i, g] >= 0:
                coeffs[var[i, g]] = 1.0 / float(workload.ecs[i, jtype, k])
        if coeffs:
            lp.add_le_constraint(coeffs, float(class_count[g]))
    for i in range(t_count):
        coeffs = {var[i, g]: 1.0 for g in range(n_classes)
                  if var[i, g] >= 0}
        if coeffs:
            lp.add_le_constraint(coeffs,
                                 float(workload.arrival_rates[i]))

    # node power as a function of u:
    #   P_j(u) = idle_node_j + sum_{i,g} membership[j,g] * marginal[i,g] * u
    # power cap row: sum_j (1 + crac_coeff_j) P_j(u) <= p_const - const
    cap_coeffs: dict[int, float] = {}
    weight_j = 1.0 + lin.crac_coeff
    for i in range(t_count):
        for g in range(n_classes):
            if var[i, g] < 0 or marginal[i, g] == 0.0:
                continue
            w = float((weight_j * membership[:, g]).sum() * marginal[i, g])
            cap_coeffs[var[i, g]] = cap_coeffs.get(var[i, g], 0.0) + w
    rhs_cap = p_const - idle_total
    lp.add_le_constraint(cap_coeffs, rhs_cap)
    # redline rows: gain[u_row] @ P(u) <= redline_rhs
    base_load = lin.inlet_gain @ idle_node
    for row in range(lin.inlet_gain.shape[0]):
        coeffs = {}
        gain_row = lin.inlet_gain[row]
        for g in range(n_classes):
            gw = float(gain_row @ membership[:, g])
            if gw == 0.0:
                continue
            for i in range(t_count):
                if var[i, g] >= 0 and marginal[i, g] != 0.0:
                    key = var[i, g]
                    coeffs[key] = coeffs.get(key, 0.0) \
                        + gw * marginal[i, g]
        if coeffs:
            lp.add_le_constraint(
                coeffs, float(lin.redline_rhs[row] - base_load[row]))

    sol = lp.solve()
    class_rates = np.zeros((t_count, n_classes))
    for i in range(t_count):
        for g in range(n_classes):
            if var[i, g] >= 0:
                class_rates[i, g] = sol.x[var[i, g]]
    tc = np.zeros((t_count, datacenter.n_cores))
    for g, c in enumerate(present):
        members = np.nonzero(class_id == c)[0]
        if class_rates[:, g].any():
            tc[:, members] = (class_rates[:, g] / members.size)[:, None]
    # safety net: the evaluated expected power must respect the cap
    node_power = expected_node_power(datacenter, workload, pstates, tc,
                                     task_power)
    total = node_power.sum() + lin.crac_power(node_power)
    if total > p_const * (1 + 1e-6) + 1e-6:
        raise AssertionError(
            f"power-aware stage 3 violated its own cap: {total:.3f} kW")
    return Stage3Solution(tc=tc, reward_rate=float(sol.objective),
                          class_rates=class_rates, class_key=class_key)
