"""Reaction policies: how the control loop survives a fault timeline.

The paper's deployment story (epoch-based re-assignment,
:mod:`repro.core.controller`) reacts to *load* changes; this module
closes the loop for *inventory* changes.  :class:`FaultAwareController`
drives one run over a :class:`~repro.faults.model.FaultSchedule`:

* the timeline is split into **control intervals** at every fault onset
  and recovery (plus the run boundaries), so the inventory is constant
  within each interval;
* at each inventory change the controller re-solves the three-stage
  assignment on the degraded view (:mod:`repro.faults.inject`) under the
  possibly-reduced power cap, re-using the epoch controller's
  transient-guarded derate loop
  (:func:`repro.core.controller.plan_with_transient_guard`) — after a
  severe fault no admissible plan may transition cleanly, so chaos runs
  keep the least-overshooting plan and *measure* the residual exposure
  (redline-violation minutes) instead of aborting;
* within each interval the second-step DES replays the interval's task
  slice against the degraded room; node crashes landing exactly at the
  interval's end are injected as
  :class:`~repro.simulate.events.CoreOutage` events so tasks queued past
  the boundary on dying cores are stranded and re-queued or dropped with
  explicit accounting;
* room temperature state is carried across intervals in full-room
  coordinates (dead nodes reconstructed as passive pass-throughs), so a
  recovery transitions from the physically-correct degraded state.

With an empty schedule the run is a single interval on the untouched
room: one plain (unguarded, cold-start) three-stage solve plus one
fault-free DES replay — bit-identical to ``repro simulate``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro import kernels
from repro.control.forecast import (FORECAST_KINDS, PersistenceForecast,
                                    make_forecast)
from repro.control.mpc import MPCConfig, MPCPlanner
from repro.core.api import SolveOptions, SolveRequest, solve
from repro.core.controller import plan_with_transient_guard, shed_plan
from repro.core.warmstart import SolveState, WarmPool, compute_digests
from repro.datacenter.builder import DataCenter
from repro.faults.inject import DegradedView, degraded_view
from repro.faults.model import FaultKind, FaultSchedule
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.simulate.engine import simulate_trace
from repro.simulate.events import CoreOutage
from repro.simulate.metrics import SimulationMetrics
from repro.thermal.transient import simulate_transient
from repro.workload.profiles import ArrivalProfile
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task

__all__ = ["ReactionPolicy", "IntervalRecord", "ChaosRunResult",
           "FaultAwareController"]


@dataclass(frozen=True)
class ReactionPolicy:
    """Tunables for the fault-reaction loop.

    Attributes
    ----------
    psi:
        ARR aggregation level for the re-solves.
    tau_s:
        Node thermal time constant for transient checks and state
        propagation.
    derate_step / max_derate:
        The transient-guard derate loop (see
        :func:`~repro.core.controller.plan_with_transient_guard`).
    stranded:
        What the dynamic scheduler does with tasks stranded on crashed
        cores: ``"requeue"`` or ``"drop"``.
    on_derate_exhausted:
        ``"best"`` (default) commits the least-overshooting plan and
        records the exposure; ``"raise"`` aborts the run like the epoch
        controller.
    warm:
        Warm-start policy for the re-solves.  ``"replay"`` (default)
        threads :class:`~repro.core.warmstart.SolveState` between
        intervals that share an inventory, engaging only the
        value-exact reuse levels — every committed plan is bit-identical
        to a cold solve.  ``"seed"`` additionally allows the heuristic
        seeded temperature search after a cap change
        (``SolveOptions.warm_seed``); ``"off"`` disables warm-starting
        entirely.
    controller:
        ``"interval"`` (default) replans reactively at inventory changes
        with the transient-guard derate loop; ``"mpc"`` replans with the
        receding-horizon planner (:class:`repro.control.mpc.MPCPlanner`),
        which looks ahead over forecast rates and escalates pre-cooling
        before derating compute.
    epoch_s:
        Optional periodic replan grid added to the fault-boundary cuts.
        ``None`` (default) keeps the classic fault-boundaries-only
        timeline; the MPC controller defaults its decision epoch to
        :attr:`MPCConfig.step_s` when unset.
    forecast / forecast_seed:
        Forecast provider for the MPC lookahead when the run is given an
        arrival profile (``"oracle"`` / ``"persistence"`` / ``"noisy"``,
        see :mod:`repro.control.forecast`); without a profile the
        lookahead degenerates to persistence.
    mpc:
        Explicit planner tunables; ``None`` derives an
        :class:`~repro.control.mpc.MPCConfig` from this policy's shared
        knobs (``psi`` / ``tau_s`` / derate loop / ``warm``).
    """

    psi: float = 50.0
    tau_s: float = 120.0
    derate_step: float = 0.05
    max_derate: int = 10
    stranded: str = "requeue"
    on_derate_exhausted: str = "best"
    warm: str = "replay"
    controller: str = "interval"
    epoch_s: float | None = None
    forecast: str = "oracle"
    forecast_seed: int = 0
    mpc: MPCConfig | None = None

    def __post_init__(self) -> None:
        if self.stranded not in ("requeue", "drop"):
            raise ValueError(
                f"stranded must be 'requeue' or 'drop', got {self.stranded!r}")
        if self.on_derate_exhausted not in ("best", "raise"):
            raise ValueError("on_derate_exhausted must be 'best' or 'raise'")
        if self.warm not in ("off", "replay", "seed"):
            raise ValueError(
                f"warm must be 'off', 'replay' or 'seed', got {self.warm!r}")
        if self.controller not in ("interval", "mpc"):
            raise ValueError(
                f"controller must be 'interval' or 'mpc', "
                f"got {self.controller!r}")
        if self.epoch_s is not None and self.epoch_s <= 0:
            raise ValueError(f"epoch_s must be positive, got {self.epoch_s}")
        if self.forecast not in FORECAST_KINDS:
            raise ValueError(
                f"forecast must be one of {FORECAST_KINDS}, "
                f"got {self.forecast!r}")

    def mpc_config(self) -> MPCConfig:
        """The planner tunables this policy implies.

        An explicit :attr:`mpc` wins; otherwise the policy's shared
        knobs are mirrored into an :class:`~repro.control.mpc.MPCConfig`
        so ``--controller interval`` vs ``mpc`` comparisons differ only
        in the control law, not in tolerances.
        """
        if self.mpc is not None:
            return self.mpc
        return MPCConfig(
            step_s=self.epoch_s if self.epoch_s is not None else 60.0,
            psi=self.psi, tau_s=self.tau_s,
            derate_step=self.derate_step, max_derate=self.max_derate,
            on_exhausted=self.on_derate_exhausted, warm=self.warm)


@dataclass
class IntervalRecord:
    """One constant-inventory control interval of a chaos run.

    Attributes
    ----------
    start_s / end_s:
        Interval boundaries (run time).
    cause:
        Why this interval began: ``"start"``, or comma-joined
        ``fault:<kind>`` / ``recovery:<kind>`` markers for the events at
        its left boundary.
    n_nodes_alive / crac_capacity / cap_kw:
        The inventory the interval ran under.
    plan_reward_rate:
        Stage 3 prediction of the interval's committed plan.
    derated:
        Derate steps the transient guard took (0 = clean transition).
    transient_overshoot_c:
        Worst redline overshoot of the transition into this interval
        after derating (``None`` for the cold start, which has no
        previous operating point to transition from).
    violation_minutes:
        Simulated minutes of the transition trajectory spent above any
        redline.
    replan_wall_s:
        Wall-clock seconds the re-solve took (the MTTR-to-replan
        sample; includes every derate iteration).
    metrics:
        Second-step DES metrics for the interval's task slice.
    """

    start_s: float
    end_s: float
    cause: str
    n_nodes_alive: int
    crac_capacity: list[float]
    cap_kw: float
    plan_reward_rate: float
    derated: int
    transient_overshoot_c: float | None
    violation_minutes: float
    replan_wall_s: float
    metrics: SimulationMetrics
    #: True when no feasible plan existed and all load was shed.
    shed: bool = False
    #: Pre-cool level of the committed plan (MPC controller only;
    #: the reactive interval controller never pre-cools).
    precooled: int = 0

    def to_dict(self) -> dict:
        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "cause": self.cause,
            "n_nodes_alive": self.n_nodes_alive,
            "crac_capacity": self.crac_capacity,
            "cap_kw": self.cap_kw,
            "plan_reward_rate": self.plan_reward_rate,
            "derated": self.derated,
            "transient_overshoot_c": self.transient_overshoot_c,
            "violation_minutes": self.violation_minutes,
            "replan_wall_s": self.replan_wall_s,
            "shed": self.shed,
            "precooled": self.precooled,
            "metrics": self.metrics.to_dict(),
        }


@dataclass
class ChaosRunResult:
    """Aggregate outcome of one fault-injected run."""

    horizon_s: float
    schedule: FaultSchedule
    intervals: list[IntervalRecord]

    @property
    def total_reward(self) -> float:
        return float(sum(iv.metrics.total_reward for iv in self.intervals))

    @property
    def reward_rate(self) -> float:
        """Reward per second; 0.0 for a degenerate (zero-length) horizon."""
        if self.horizon_s <= 0.0:
            return 0.0
        return self.total_reward / self.horizon_s

    @property
    def violation_minutes(self) -> float:
        """Total transition time with any inlet above its redline."""
        return float(sum(iv.violation_minutes for iv in self.intervals))

    @property
    def tasks_lost(self) -> int:
        """Arrivals that never earned reward: dropped + stranded-dropped."""
        lost = 0
        for iv in self.intervals:
            lost += int(iv.metrics.dropped.sum())
            if iv.metrics.stranded_dropped is not None:
                lost += int(iv.metrics.stranded_dropped.sum())
        return lost

    @property
    def tasks_requeued(self) -> int:
        return int(sum(
            0 if iv.metrics.stranded_requeued is None
            else iv.metrics.stranded_requeued.sum() for iv in self.intervals))

    @property
    def n_replans(self) -> int:
        """Re-solves triggered by inventory changes (cold start excluded)."""
        return sum(1 for iv in self.intervals if iv.cause != "start")

    @property
    def precools(self) -> int:
        """Total pre-cool levels committed (MPC controller only)."""
        return sum(iv.precooled for iv in self.intervals)

    @property
    def derates(self) -> int:
        """Total derate steps committed across the run's intervals."""
        return sum(iv.derated for iv in self.intervals)

    @property
    def shed_intervals(self) -> int:
        return sum(1 for iv in self.intervals if iv.shed)

    @property
    def replan_wall_times(self) -> list[float]:
        return [iv.replan_wall_s for iv in self.intervals
                if iv.cause != "start"]

    @property
    def mean_replan_s(self) -> float:
        """Mean time-to-replan over the fault reactions (0 if none)."""
        times = self.replan_wall_times
        return float(np.mean(times)) if times else 0.0

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "horizon_s": self.horizon_s,
            "n_fault_events": len(self.schedule),
            "total_reward": self.total_reward,
            "reward_rate": self.reward_rate,
            "violation_minutes": self.violation_minutes,
            "tasks_lost": self.tasks_lost,
            "tasks_requeued": self.tasks_requeued,
            "n_replans": self.n_replans,
            "precools": self.precools,
            "derates": self.derates,
            "mean_replan_s": self.mean_replan_s,
            "intervals": [iv.to_dict() for iv in self.intervals],
        }


def _interval_cause(schedule: FaultSchedule, t: float) -> str:
    """Human-readable reason the inventory changed at instant ``t``."""
    if t == 0.0:
        return "start"
    markers = [f"fault:{ev.kind.value}" for ev in schedule
               if ev.start_s == t]
    markers += [f"recovery:{ev.kind.value}" for ev in schedule
                if ev.end_s == t]
    return ",".join(markers) if markers else "epoch"


class FaultAwareController:
    """Drives the thermal-aware control loop through a fault timeline.

    Parameters
    ----------
    datacenter:
        The healthy room (thermal model attached).
    workload:
        The stationary workload (the paper's Section VI setup); the
        chaos dimension is equipment availability, not load drift.
    p_const:
        Nominal room power cap, kW (scaled down by active cap-drop
        faults).
    policy:
        Reaction tunables (:class:`ReactionPolicy`).
    """

    def __init__(self, datacenter: DataCenter, workload: Workload,
                 p_const: float, policy: ReactionPolicy | None = None):
        if p_const <= 0:
            raise ValueError("power cap must be positive")
        datacenter.require_thermal()
        self.datacenter = datacenter
        self.workload = workload
        self.p_const = p_const
        self.policy = policy or ReactionPolicy()
        # warm-start chains keyed by structure digest: the healthy room
        # and every distinct degraded inventory (and, under MPC, every
        # pre-cool tightening level) keep independent chains, so a
        # recovery replays against the pre-fault state, not the
        # degraded one
        self._mpc: MPCPlanner | None = None
        if self.policy.controller == "mpc":
            self._mpc = MPCPlanner(self.policy.mpc_config())
            self._warm: WarmPool = self._mpc.pool
        else:
            self._warm = WarmPool()

    # ------------------------------------------------------------------
    def _cold_start_t_out(self, view: DegradedView) -> np.ndarray:
        """Idle-room steady state (the epoch controller's convention)."""
        dc = view.datacenter
        model = dc.require_thermal()
        idle = dc.node_power_kw(dc.all_off_pstates())
        t_mid = np.full(dc.n_crac, float(np.mean(
            [c.outlet_range_c for c in dc.cracs])))
        return model.steady_state(t_mid, idle).t_out

    def run(self, trace: list[Task], horizon_s: float,
            schedule: FaultSchedule,
            profile: ArrivalProfile | None = None) -> ChaosRunResult:
        """Replay ``trace`` over ``horizon_s`` seconds under ``schedule``.

        With ``profile`` the interval workloads track the drifting
        arrival rates (and the MPC lookahead reads its forecast from the
        profile); without it the stationary workload is used everywhere,
        which keeps the classic chaos runs bit-identical.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        dc = self.datacenter
        pol = self.policy
        schedule.validate_for(dc.n_nodes, dc.n_crac)
        cuts = {0.0, float(horizon_s)}
        cuts.update(schedule.boundaries(horizon_s))
        grid = None
        if pol.controller == "mpc":
            grid = self._mpc.config.step_s
        elif pol.epoch_s is not None:
            grid = pol.epoch_s
        if grid is not None:
            k = 1
            while k * grid < horizon_s:
                cuts.add(float(k * grid))
                k += 1
        provider = None
        if pol.controller == "mpc":
            provider = (make_forecast(pol.forecast, profile,
                                      seed=pol.forecast_seed)
                        if profile is not None else PersistenceForecast())
        intervals: list[IntervalRecord] = []
        t_out_full: np.ndarray | None = None
        cursor = 0
        ordered = sorted(cuts)
        for a, b in zip(ordered[:-1], ordered[1:]):
            state = schedule.state_at(a, dc.n_nodes, dc.n_crac)
            view = degraded_view(dc, self.workload, state)
            cap = view.cap(self.p_const)
            cause = _interval_cause(schedule, a)
            with obs_span("interval", cause=cause,
                          n_nodes_alive=view.datacenter.n_nodes):
                record, t_out_full, cursor = self._run_interval(
                    a, b, horizon_s, cause, state, view, cap, trace,
                    cursor, t_out_full, schedule, profile, provider)
            intervals.append(record)
        return ChaosRunResult(horizon_s=float(horizon_s), schedule=schedule,
                              intervals=intervals)

    def _replan_interval(self, view: DegradedView, wl_iv: Workload,
                         cap: float, t_out_full: np.ndarray | None):
        """The reactive interval replan: guard, derate, shed fallback."""
        pol = self.policy
        options = SolveOptions(psi=pol.psi, warm_seed=pol.warm == "seed",
                               kernel=kernels.active_name())
        warm_key: str | None = None
        warm_state: SolveState | None = None
        if pol.warm != "off":
            warm_key = compute_digests(view.datacenter, wl_iv,
                                       cap, options).structure
            warm_state = self._warm.get(warm_key)
        try:
            with obs_span("replan", cold_start=t_out_full is None):
                if t_out_full is None:
                    # cold start: no previous operating point to transition
                    # from; commit the plain plan (matches `repro simulate`)
                    plan = solve(SolveRequest(
                        view.datacenter, wl_iv, cap,
                        options=options, warm_start=warm_state))
                    derated, overshoot = 0, None
                else:
                    t_prev = view.reduce_t_out(t_out_full)
                    plan, derated, overshoot = plan_with_transient_guard(
                        view.datacenter, wl_iv, cap, t_prev,
                        psi=pol.psi, tau_s=pol.tau_s,
                        derate_step=pol.derate_step,
                        max_derate=pol.max_derate,
                        on_exhausted=pol.on_derate_exhausted,
                        warm_start=warm_state,
                        warm_seed=pol.warm == "seed")
            if warm_key is not None:
                self._warm.put(warm_key, plan.state)
        except RuntimeError:
            # even the (derated) first step is infeasible under this
            # inventory — shed all load rather than abort the run; in
            # strict mode the caller wants the error instead
            if pol.on_derate_exhausted == "raise":
                raise
            plan = shed_plan(view.datacenter, wl_iv.n_task_types)
            obs_metrics.counter("chaos.shed_events").inc()
            return plan, 0, None, True
        return plan, derated, overshoot, False

    def _run_interval(self, a: float, b: float, horizon_s: float,
                      cause: str, state, view: DegradedView, cap: float,
                      trace: list[Task], cursor: int,
                      t_out_full: np.ndarray | None,
                      schedule: FaultSchedule,
                      profile: ArrivalProfile | None = None,
                      provider=None
                      ) -> tuple[IntervalRecord, np.ndarray, int]:
        """One constant-inventory interval: replan, propagate, replay."""
        pol = self.policy
        t0 = time.perf_counter()
        shed = False
        precooled = 0
        wl_iv = view.workload
        if profile is not None:
            wl_iv = replace(view.workload, arrival_rates=np.asarray(
                profile.rates(a), dtype=float))
        if pol.controller == "mpc":
            cfg = self._mpc.config
            forecast_rates = provider.rates_ahead(
                a, wl_iv.arrival_rates, cfg.horizon_steps, cfg.step_s)
            t_prev = (None if t_out_full is None
                      else view.reduce_t_out(t_out_full))
            with obs_span("replan", cold_start=t_out_full is None):
                decision = self._mpc.plan(view.datacenter, wl_iv, cap,
                                          t_prev, forecast_rates,
                                          first_step_s=b - a)
            plan = decision.plan
            derated = decision.derated
            precooled = decision.precooled
            overshoot = decision.predicted_overshoot_c
            shed = decision.shed
            if shed:
                obs_metrics.counter("chaos.shed_events").inc()
        else:
            plan, derated, overshoot, shed = self._replan_interval(
                view, wl_iv, cap, t_out_full)
        replan_wall = time.perf_counter() - t0
        if cause != "start":
            obs_metrics.counter("chaos.replans").inc()
            obs_metrics.histogram("chaos.replan_s").observe(replan_wall)

        # thermal state propagation over the interval (and the
        # violation-minutes exposure of the transition into it)
        model = view.datacenter.require_thermal()
        node_power = view.datacenter.node_power_kw(plan.pstates)
        if t_out_full is None:
            start_t_out = self._cold_start_t_out(view)
            # convention: the cold room settles at the plan's
            # operating point before tasks arrive (no transition)
            violation_min = 0.0
            end_t_out = model.steady_state(plan.t_crac_out,
                                           node_power).t_out
        else:
            dt = min(1.0, pol.tau_s / 4.0)
            start_t_out = view.reduce_t_out(t_out_full)
            with obs_span("transient"):
                transient = simulate_transient(
                    model, plan.t_crac_out, node_power, start_t_out,
                    duration_s=max(b - a, dt), tau_s=pol.tau_s, dt_s=dt)
            violation_min = transient.violation_minutes(
                view.datacenter.redline_c)
            end_t_out = transient.t_out[-1]
        t_out_full = view.expand_t_out(end_t_out)

        # the interval's task slice, re-based to interval-local time
        chunk: list[Task] = []
        while cursor < len(trace) and trace[cursor].arrival < b:
            t = trace[cursor]
            chunk.append(t if a == 0.0 else
                         Task(arrival=t.arrival - a,
                              task_type=t.task_type, uid=t.uid,
                              deadline=t.deadline - a))
            cursor += 1

        # nodes dying exactly at the right boundary strand their queues
        outages: list[CoreOutage] = []
        if b < horizon_s:
            for ev in schedule.events_starting_at(
                    b, kind=FaultKind.NODE_CRASH):
                pos = np.nonzero(view.node_map == ev.target)[0]
                if pos.size == 0:
                    continue  # already dead in this interval
                node = view.datacenter.nodes[int(pos[0])]
                outages.append(CoreOutage(
                    start_s=b - a,
                    cores=tuple(node.core_indices)))
        metrics = simulate_trace(
            view.datacenter, wl_iv, plan.tc, plan.pstates,
            chunk, duration=b - a,
            faults=outages if outages else None,
            stranded_policy=pol.stranded)
        record = IntervalRecord(
            start_s=a, end_s=b, cause=cause,
            n_nodes_alive=view.datacenter.n_nodes,
            crac_capacity=[float(c) for c in state.crac_capacity],
            cap_kw=cap,
            plan_reward_rate=plan.reward_rate,
            derated=derated,
            transient_overshoot_c=overshoot,
            violation_minutes=violation_min,
            replan_wall_s=replan_wall,
            metrics=metrics,
            shed=shed,
            precooled=precooled)
        return record, t_out_full, cursor
