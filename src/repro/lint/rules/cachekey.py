"""Cache-key completeness (RL050).

PRs 5-8 each grew a config dataclass by a field and each had to
remember to fold the new field into the cache key or warm-start digest
(and bump ``CACHE_SCHEMA_VERSION``).  Forgetting is silent: two runs
that differ only in the new field share a cache entry and replay the
wrong result.  This rule closes the loop structurally: for every
:class:`~repro.lint.base.CacheContract` (``dataclass -> key
functions``), every field of the dataclass must *reach* a key function
or carry an explicit exemption pragma on its definition line::

    warm_seed: bool = False   # repro-lint: cache-exempt(never changes values)

A field counts as covered when

* a key function takes a parameter annotated with the contract class
  and reads ``param.field`` anywhere in its body,
* a key function applies ``dataclasses.asdict``/``astuple``/``vars``/
  ``repr`` to such a parameter (blanket coverage — every field is in),
* or a *caller* of a key function passes ``param.field`` (or a local
  alias ``x = param.field``) in the key-function call's arguments.

Contracts come from :attr:`LintConfig.cache_contracts`; a class may
also declare its own with ``# repro-lint: cache-class(key_fn)`` on its
``class`` line (the key function is looked up in the same module) —
that is how the fixture tests exercise the rule without touching the
global config.  A contract whose key functions are all missing from
the project is itself reported: deleting ``cache_key`` outright must
not silently disable the check.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import CacheContract, ProjectRule, register
from repro.lint.callgraph import build_callgraph
from repro.lint.project import ClassInfo, FunctionInfo, ModuleInfo, Project

__all__ = ["CacheKeyCompleteness"]

_EXEMPT_RE = re.compile(r"#\s*repro-lint:\s*cache-exempt\(([^)]*)\)")
_CLASS_CONTRACT_RE = re.compile(r"#\s*repro-lint:\s*cache-class\(([^)]*)\)")

#: Calls that serialize a whole dataclass instance — every field reaches
#: the key when one of these wraps the typed parameter.
_BLANKET_CALLS = frozenset({
    "dataclasses.asdict", "dataclasses.astuple", "asdict", "astuple",
    "vars", "repr", "str",
})


def _annotation_targets(module: ModuleInfo, text: str | None) -> set[str]:
    """Fully-qualified classes a parameter annotation may refer to.

    Handles ``X``, ``"X"``, ``X | None`` and ``Optional[X]`` by
    resolving every dotted identifier in the annotation through the
    module's import tables.
    """
    out: set[str] = set()
    if not text:
        return out
    for dotted in re.findall(r"[A-Za-z_][A-Za-z0-9_.]*", text):
        head, _, rest = dotted.partition(".")
        if head in module.from_imports:
            mod, name = module.from_imports[head]
            base = f"{mod}.{name}"
            out.add(f"{base}.{rest}" if rest else base)
        elif head in module.imports:
            base = module.imports[head]
            out.add(f"{base}.{rest}" if rest else base)
        else:
            out.add(f"{module.name}.{dotted}")
            out.add(dotted)
    return out


def _typed_params(func: FunctionInfo, cls_fqn: str) -> set[str]:
    """Parameter names of ``func`` annotated with the contract class."""
    return {name for name in func.params
            if cls_fqn in _annotation_targets(
                func.module, func.annotations.get(name))}


def _field_reads(node: ast.AST, params: set[str]) -> set[str]:
    """``x.field`` attribute names read off any of ``params`` in a tree."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and \
                isinstance(sub.value, ast.Name) and \
                sub.value.id in params:
            out.add(sub.attr)
    return out


def _has_blanket(func: FunctionInfo, node: ast.AST,
                 params: set[str]) -> bool:
    """True when a whole-instance serializer wraps a typed parameter."""
    project_resolve = func.module
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call) or not sub.args:
            continue
        first = sub.args[0]
        if not (isinstance(first, ast.Name) and first.id in params):
            continue
        target = None
        fn = sub.func
        if isinstance(fn, ast.Name):
            target = fn.id
            if target in project_resolve.from_imports:
                mod, name = project_resolve.from_imports[target]
                target = f"{mod}.{name}"
        elif isinstance(fn, ast.Attribute) and \
                isinstance(fn.value, ast.Name):
            head = project_resolve.imports.get(fn.value.id, fn.value.id)
            target = f"{head}.{fn.attr}"
        if target in _BLANKET_CALLS:
            return True
    return False


def _alias_map(func: FunctionInfo, params: set[str]) -> dict[str, str]:
    """``local name -> field`` for simple ``x = param.field`` assigns."""
    out: dict[str, str] = {}
    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and \
                isinstance(sub.targets[0], ast.Name) and \
                isinstance(sub.value, ast.Attribute) and \
                isinstance(sub.value.value, ast.Name) and \
                sub.value.value.id in params:
            out[sub.targets[0].id] = sub.value.attr
    return out


@register
class CacheKeyCompleteness(ProjectRule):
    code = "RL050"
    name = "cache-key-completeness"
    category = "determinism"
    description = ("a config dataclass field never reaches its cache-key/"
                   "digest function and carries no cache-exempt pragma")

    def check(self) -> None:
        contracts = list(self.config.cache_contracts)
        contracts += self._pragma_contracts()
        graph = build_callgraph(self.project)
        for contract in contracts:
            cls = self.project.classes.get(contract.cls)
            if cls is None:
                continue        # class not under analysis in this run
            self._check_contract(contract, cls, graph)

    # -- contract discovery -------------------------------------------
    def _pragma_contracts(self) -> list[CacheContract]:
        """Contracts declared inline: ``# repro-lint: cache-class(fn)``."""
        out: list[CacheContract] = []
        for module in self.project.sorted_modules():
            for qualname in sorted(module.classes):
                cls = module.classes[qualname]
                match = _CLASS_CONTRACT_RE.search(
                    module.line_text(cls.node.lineno))
                if match is None:
                    continue
                key_fns = tuple(
                    f"{module.name}.{name.strip()}"
                    for name in match.group(1).split(",") if name.strip())
                if key_fns:
                    out.append(CacheContract(cls=qualname,
                                             key_fns=key_fns))
        return out

    # -- the completeness check ---------------------------------------
    def _check_contract(self, contract: CacheContract, cls: ClassInfo,
                        graph: "object") -> None:
        key_fns = [self.project.functions[fqn] for fqn in contract.key_fns
                   if fqn in self.project.functions]
        if not key_fns:
            self.report(
                cls.module, cls.node,
                f"cache contract broken: none of the key functions "
                f"({', '.join(contract.key_fns)}) exist in the project; "
                f"{cls.qualname} fields are no longer covered by any "
                f"cache key")
            return

        covered: set[str] = set()
        blanket = False
        for fn in key_fns:
            params = _typed_params(fn, contract.cls)
            if params:
                covered |= _field_reads(fn.node, params)
                blanket = blanket or _has_blanket(fn, fn.node, params)
        covered |= self._caller_coverage(contract, key_fns, graph)

        trace = tuple(
            f"{fn.module.rel_path}:{fn.node.lineno}: checked key "
            f"function {fn.qualname}()" for fn in key_fns)
        for fld in cls.fields:
            if blanket or fld.name in covered:
                continue
            reason = self._exemption(cls, fld.lineno)
            if reason is None:
                self.report(
                    cls.module, _FieldAnchor(fld.lineno),
                    f"field '{fld.name}' of {cls.qualname} never reaches "
                    f"{self._fn_names(key_fns)}; fold it into the key or "
                    f"mark it '# repro-lint: cache-exempt(reason)'",
                    trace=trace)
            elif not reason:
                self.report(
                    cls.module, _FieldAnchor(fld.lineno),
                    f"cache-exempt pragma on '{fld.name}' has an empty "
                    f"reason; say why the field cannot affect results",
                    trace=trace)
        # a pragma on a covered field is stale — the exemption is
        # meaningless once the field is in the key
        for fld in cls.fields:
            if not blanket and fld.name in covered and \
                    self._exemption(cls, fld.lineno) is not None:
                self.report(
                    cls.module, _FieldAnchor(fld.lineno),
                    f"stale cache-exempt pragma: '{fld.name}' already "
                    f"reaches {self._fn_names(key_fns)}",
                    trace=trace)

    def _caller_coverage(self, contract: CacheContract,
                         key_fns: list[FunctionInfo],
                         graph: "object") -> set[str]:
        """Fields passed *into* a key-function call by its callers.

        ``compute_digests(request.datacenter, ...)`` covers
        ``datacenter`` even though no key-function parameter has the
        contract's type; one level of local aliasing
        (``opt = request.options``) is followed.
        """
        key_names = {fn.qualname for fn in key_fns}
        callers = sorted({site.caller for site in graph.sites  # type: ignore[attr-defined]
                          if site.callee in key_names})
        covered: set[str] = set()
        for caller_fqn in callers:
            caller = self.project.functions.get(caller_fqn)
            if caller is None:
                continue
            params = _typed_params(caller, contract.cls)
            if not params:
                continue
            aliases = _alias_map(caller, params)
            for sub in ast.walk(caller.node):
                if not isinstance(sub, ast.Call):
                    continue
                target = self.project.resolve(caller.module, sub.func)
                if target not in key_names:
                    continue
                arg_nodes = list(sub.args) + \
                    [kw.value for kw in sub.keywords]
                for arg in arg_nodes:
                    covered |= _field_reads(arg, params)
                    for name_node in ast.walk(arg):
                        if isinstance(name_node, ast.Name) and \
                                name_node.id in aliases:
                            covered.add(aliases[name_node.id])
        return covered

    def _exemption(self, cls: ClassInfo, lineno: int) -> str | None:
        """Pragma reason on a field's line; None when absent."""
        match = _EXEMPT_RE.search(cls.module.line_text(lineno))
        if match is None:
            return None
        return match.group(1).strip()

    @staticmethod
    def _fn_names(key_fns: list[FunctionInfo]) -> str:
        return " or ".join(f"{fn.qualname}()" for fn in key_fns)


class _FieldAnchor:
    """Minimal node stand-in so findings anchor on the field's line."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
        self.col_offset = 0
