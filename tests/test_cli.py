"""Tests for repro.cli — the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_unknown_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])
        capsys.readouterr()

    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.runs == 5 and args.nodes == 30
        assert args.jobs == 1 and not args.resume
        assert args.cache_dir == ".repro-cache"

    def test_engine_flags(self):
        args = build_parser().parse_args(
            ["fig6", "--jobs", "4", "--cache-dir", "/tmp/c", "--resume"])
        assert args.jobs == 4 and args.cache_dir == "/tmp/c"
        assert args.resume
        args = build_parser().parse_args(["sweep", "--jobs", "2"])
        assert args.jobs == 2

    def test_compare_set_choices(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--set", "4"])
        capsys.readouterr()

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.nodes == 20 and args.factors == "0,0.5,1,2"
        assert args.stranded == "requeue" and not args.json
        assert args.jobs == 1 and args.scenario is None

    def test_chaos_stranded_choices(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--stranded", "panic"])
        capsys.readouterr()

    def test_simulate_json_flag(self):
        args = build_parser().parse_args(["simulate", "--json"])
        assert args.json


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "0.353" in out

    def test_tables_custom_static(self, capsys):
        assert main(["tables", "--static", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "20%" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--nodes", "15", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "three-stage" in out
        assert "improvement over baseline" in out

    def test_fig6_tiny(self, capsys, tmp_path):
        assert main(["fig6", "--runs", "2", "--nodes", "15",
                     "--seed", "77", "--cache-dir",
                     str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "set3" in out

    def test_fig6_resume_reports_cache_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        args = ["fig6", "--runs", "2", "--nodes", "10", "--seed", "11",
                "--cache-dir", cache]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "6 runs, 0 cache hits, 6 computed" in first
        assert main(args + ["--resume", "--jobs", "2"]) == 0
        second = capsys.readouterr().out
        assert "6 runs, 6 cache hits, 0 computed" in second
        # cached replay reproduces the identical table
        table = [ln for ln in first.splitlines() if ln.startswith("set")]
        assert table == [ln for ln in second.splitlines()
                         if ln.startswith("set")]

    def test_simulate(self, capsys):
        assert main(["simulate", "--nodes", "15", "--seed", "2",
                     "--horizon", "5"]) == 0
        out = capsys.readouterr().out
        assert "planned reward rate" in out
        assert "achieved (DES)" in out

    def test_simulate_json(self, capsys):
        import json

        assert main(["simulate", "--nodes", "15", "--seed", "2",
                     "--horizon", "5", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert doc["planned_reward_rate"] > 0
        assert doc["duration_s"] == 5.0
        assert isinstance(doc["completed"], list)

    def test_chaos_sweep_json(self, capsys, tmp_path):
        import json

        assert main(["chaos", "--nodes", "6", "--seed", "0",
                     "--horizon", "20", "--factors", "0,1",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        factors = [p["factor"] for p in doc["points"]]
        assert factors == [0.0, 1.0]
        assert doc["points"][0]["reward_retained"] == pytest.approx(1.0)

    def test_chaos_text_table(self, capsys, tmp_path):
        assert main(["chaos", "--nodes", "6", "--seed", "0",
                     "--horizon", "20", "--factors", "0",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        assert "retained" in out

    def test_chaos_scenario_file(self, capsys, tmp_path):
        import json

        scenario = {"events": [{"kind": "crac_outage", "start_s": 8.0,
                                "duration_s": 6.0, "target": 0}]}
        path = tmp_path / "scn.json"
        path.write_text(json.dumps(scenario))
        assert main(["chaos", "--nodes", "6", "--seed", "0",
                     "--horizon", "20", "--scenario", str(path),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_fault_events"] == 1
        assert doc["n_replans"] == 2

    def test_chaos_bad_factors(self, capsys):
        assert main(["chaos", "--factors", "0,nope"]) == 2
        assert "invalid --factors" in capsys.readouterr().err

    def test_sweep_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        assert main(["sweep", "--nodes", "12", "--seed", "5",
                     "--points", "3", "--csv", str(csv_path),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "cap kW" in out
        assert csv_path.exists()
        assert "p_const_kw" in csv_path.read_text()

    def test_fig6_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig6.csv"
        assert main(["fig6", "--runs", "2", "--nodes", "12",
                     "--seed", "88", "--csv", str(csv_path),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        capsys.readouterr()
        text = csv_path.read_text()
        assert "mean_improvement_pct" in text
        assert "set3" in text
