"""Thin wrapper around :func:`scipy.optimize.linprog` (HiGHS).

All linear programs in the library are built as sparse inequality /
equality systems and solved with the HiGHS dual simplex, which is exact
enough for the small-to-medium LPs produced after the aggregation
described in DESIGN.md section 3.1.

The wrapper exists so that

* every LP in the code base states its intent (maximize vs minimize)
  explicitly,
* infeasibility is reported with the model name attached, and
* constraint matrices can be assembled incrementally row-by-row without
  each call site repeating the scipy boilerplate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog as _scipy_linprog

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span

__all__ = ["LinearProgram", "LPSolution", "LPWarmStart", "InfeasibleError"]


class InfeasibleError(RuntimeError):
    """Raised when an LP that is expected to be feasible is not."""


@dataclass
class LPSolution:
    """Result of an LP solve.

    Attributes
    ----------
    x:
        Optimal variable vector.
    objective:
        Optimal objective value *in the caller's sense* (i.e. already
        negated back for maximization problems).
    status:
        HiGHS status code (0 = optimal).
    """

    x: np.ndarray
    objective: float
    status: int


@dataclass(frozen=True)
class LPWarmStart:
    """A previous solve's solution, tagged with the LP it came from.

    HiGHS (as exposed through scipy) accepts no starting basis, so the
    only exact warm-start mechanism available is *replay*: when the new
    LP is byte-identical to the one that produced ``solution`` (the
    fingerprints match), the stored solution IS the optimum and is
    returned without invoking the solver at all.  A mismatched
    fingerprint falls through to a normal cold solve, so correctness
    never depends on the warm start.

    ``fingerprint`` is an opaque caller-chosen key.  Callers that
    already know what distinguishes their LPs (e.g. Stage 1 keys its
    LPs by (structure digest, power cap, disabled set, temperature
    vector)) should pass a cheap derived string; callers without such
    knowledge can use :meth:`LinearProgram.fingerprint`, which hashes
    the assembled program exactly but costs a pass over the triplets.
    """

    fingerprint: str
    solution: LPSolution


@dataclass
class LinearProgram:
    """Incrementally assembled linear program.

    Variables are identified by integer index; the caller allocates them
    with :meth:`add_variables` which returns the index range.

    Example
    -------
    >>> lp = LinearProgram(name="toy", maximize=True)
    >>> x = lp.add_variables(2, lb=0.0, ub=4.0, objective=[1.0, 2.0])
    >>> lp.add_le_constraint({x[0]: 1.0, x[1]: 1.0}, 5.0)
    >>> sol = lp.solve()
    >>> float(sol.objective)
    9.0
    """

    name: str = "lp"
    maximize: bool = False
    _num_vars: int = field(default=0, init=False)
    _obj: list[float] = field(default_factory=list, init=False)
    _lb: list[float] = field(default_factory=list, init=False)
    _ub: list[float] = field(default_factory=list, init=False)
    # COO triplets for A_ub / A_eq
    _ub_rows: list[int] = field(default_factory=list, init=False)
    _ub_cols: list[int] = field(default_factory=list, init=False)
    _ub_vals: list[float] = field(default_factory=list, init=False)
    _b_ub: list[float] = field(default_factory=list, init=False)
    _eq_rows: list[int] = field(default_factory=list, init=False)
    _eq_cols: list[int] = field(default_factory=list, init=False)
    _eq_vals: list[float] = field(default_factory=list, init=False)
    _b_eq: list[float] = field(default_factory=list, init=False)

    # ------------------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return self._num_vars

    @property
    def num_constraints(self) -> int:
        return len(self._b_ub) + len(self._b_eq)

    def add_variables(self, n: int, lb: float | Sequence[float] = 0.0,
                      ub: float | Sequence[float] = np.inf,
                      objective: float | Sequence[float] = 0.0) -> range:
        """Allocate ``n`` new variables, returning their index range."""
        if n <= 0:
            raise ValueError(f"variable count must be positive, got {n}")
        lb_arr = np.broadcast_to(np.asarray(lb, dtype=float), (n,))
        ub_arr = np.broadcast_to(np.asarray(ub, dtype=float), (n,))
        obj_arr = np.broadcast_to(np.asarray(objective, dtype=float), (n,))
        if np.any(lb_arr > ub_arr):
            raise ValueError("lower bound exceeds upper bound")
        start = self._num_vars
        self._num_vars += n
        self._lb.extend(lb_arr.tolist())
        self._ub.extend(ub_arr.tolist())
        self._obj.extend(obj_arr.tolist())
        return range(start, start + n)

    def set_bounds(self, index: int, lb: float, ub: float) -> None:
        """Tighten the bounds of an existing variable."""
        if not 0 <= index < self._num_vars:
            raise IndexError(f"variable index {index} out of range")
        if lb > ub:
            raise ValueError(f"lower bound {lb} exceeds upper bound {ub}")
        self._lb[index] = float(lb)
        self._ub[index] = float(ub)

    def _check_coeffs(self, coeffs: dict[int, float]) -> None:
        for idx in coeffs:
            if not 0 <= idx < self._num_vars:
                raise IndexError(f"variable index {idx} out of range "
                                 f"(have {self._num_vars} variables)")

    def add_le_constraint(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[i] * x_i <= rhs``."""
        self._check_coeffs(coeffs)
        row = len(self._b_ub)
        for idx, val in coeffs.items():
            if val != 0.0:
                self._ub_rows.append(row)
                self._ub_cols.append(idx)
                self._ub_vals.append(float(val))
        self._b_ub.append(float(rhs))

    def add_ge_constraint(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[i] * x_i >= rhs`` (stored negated)."""
        self.add_le_constraint({i: -v for i, v in coeffs.items()}, -rhs)

    def add_eq_constraint(self, coeffs: dict[int, float], rhs: float) -> None:
        """Add ``sum coeffs[i] * x_i == rhs``."""
        self._check_coeffs(coeffs)
        row = len(self._b_eq)
        for idx, val in coeffs.items():
            if val != 0.0:
                self._eq_rows.append(row)
                self._eq_cols.append(idx)
                self._eq_vals.append(float(val))
        self._b_eq.append(float(rhs))

    def add_dense_le_rows(self, rows: np.ndarray, rhs: np.ndarray) -> None:
        """Add many dense ``<=`` rows at once (shape checks included)."""
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float))
        if rows.shape[0] != rhs.shape[0]:
            raise ValueError("row/rhs count mismatch")
        if rows.shape[1] != self._num_vars:
            raise ValueError(
                f"row width {rows.shape[1]} != variable count {self._num_vars}")
        base = len(self._b_ub)
        r_idx, c_idx = np.nonzero(rows)
        self._ub_rows.extend((r_idx + base).tolist())
        self._ub_cols.extend(c_idx.tolist())
        self._ub_vals.extend(rows[r_idx, c_idx].tolist())
        self._b_ub.extend(rhs.tolist())

    def add_sparse_le_rows(self, rows: "sparse.spmatrix",
                           rhs: np.ndarray) -> None:
        """Add many ``<=`` rows given as a scipy sparse matrix.

        Same contract as :meth:`add_dense_le_rows` without ever
        materializing the dense row block — used by the zonal Stage 1
        master LP, whose constraint rows are zone-local and would be
        ~99% explicit zeros at 100x room sizes.
        """
        coo = sparse.coo_matrix(rows)
        rhs = np.atleast_1d(np.asarray(rhs, dtype=float))
        if coo.shape[0] != rhs.shape[0]:
            raise ValueError("row/rhs count mismatch")
        if coo.shape[1] != self._num_vars:
            raise ValueError(
                f"row width {coo.shape[1]} != variable count {self._num_vars}")
        base = len(self._b_ub)
        keep = coo.data != 0.0
        self._ub_rows.extend((coo.row[keep] + base).tolist())
        self._ub_cols.extend(coo.col[keep].tolist())
        self._ub_vals.extend(coo.data[keep].tolist())
        self._b_ub.extend(rhs.tolist())

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Exact structural hash of the assembled program.

        Two programs share a fingerprint iff they have identical
        objective sense, bounds, objective coefficients and constraint
        triplets — i.e. iff :meth:`solve` is guaranteed to return
        bit-identical solutions for both.  Cost is linear in the number
        of nonzeros; hot paths that can derive a cheaper equivalent key
        should do so and pass it to :meth:`solve` directly.
        """
        h = hashlib.sha256()
        h.update(b"max" if self.maximize else b"min")
        for part in (self._obj, self._lb, self._ub, self._b_ub, self._b_eq,
                     self._ub_vals, self._eq_vals):
            h.update(np.asarray(part, dtype=float).tobytes())
        for part in (self._ub_rows, self._ub_cols,
                     self._eq_rows, self._eq_cols):
            h.update(np.asarray(part, dtype=np.int64).tobytes())
        h.update(self._num_vars.to_bytes(8, "little"))
        return h.hexdigest()

    def solve(self, *, require_feasible: bool = True,
              warm_start: LPWarmStart | None = None,
              fingerprint: str | None = None) -> LPSolution:
        """Solve with HiGHS and return an :class:`LPSolution`.

        When ``warm_start`` is given and its fingerprint equals
        ``fingerprint`` (or, if ``fingerprint`` is None, this program's
        :meth:`fingerprint`), the stored solution is replayed verbatim —
        bit-identical to a cold solve of the same program — and the
        solver is never invoked.  A fingerprint mismatch falls through
        to a cold solve.

        Raises
        ------
        InfeasibleError
            If the LP is infeasible/unbounded and ``require_feasible``.
        """
        if self._num_vars == 0:
            raise ValueError(f"LP '{self.name}' has no variables")
        if warm_start is not None:
            key = fingerprint if fingerprint is not None \
                else self.fingerprint()
            if warm_start.fingerprint == key:
                obs_metrics.counter(f"lp.warm_hits.{self.name}").inc()
                return warm_start.solution
            obs_metrics.counter(f"lp.warm_misses.{self.name}").inc()
        with obs_span("lp", lp=self.name, vars=self._num_vars,
                      constraints=self.num_constraints):
            return self._solve(require_feasible)

    def _solve(self, require_feasible: bool) -> LPSolution:
        obs_metrics.counter(f"lp.solves.{self.name}").inc()
        obs_metrics.histogram(f"lp.vars.{self.name}").observe(self._num_vars)
        obs_metrics.histogram(
            f"lp.constraints.{self.name}").observe(self.num_constraints)
        c = np.asarray(self._obj, dtype=float)
        if self.maximize:
            c = -c
        n = self._num_vars
        a_ub = b_ub = a_eq = b_eq = None
        if self._b_ub:
            a_ub = sparse.csr_matrix(
                (self._ub_vals, (self._ub_rows, self._ub_cols)),
                shape=(len(self._b_ub), n))
            b_ub = np.asarray(self._b_ub, dtype=float)
        if self._b_eq:
            a_eq = sparse.csr_matrix(
                (self._eq_vals, (self._eq_rows, self._eq_cols)),
                shape=(len(self._b_eq), n))
            b_eq = np.asarray(self._b_eq, dtype=float)
        bounds = np.column_stack([self._lb, self._ub])
        res = _scipy_linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                             bounds=bounds, method="highs")
        if not res.success:
            obs_metrics.counter(f"lp.infeasible.{self.name}").inc()
            if require_feasible:
                raise InfeasibleError(
                    f"LP '{self.name}' failed: {res.message} (status {res.status})")
            return LPSolution(x=np.full(n, np.nan), objective=np.nan,
                              status=int(res.status))
        obj = float(res.fun)
        if self.maximize:
            obj = -obj
        return LPSolution(x=np.asarray(res.x, dtype=float), objective=obj,
                          status=int(res.status))
