"""Tests for repro.thermal.interference — the Appendix B generator."""

import numpy as np
import pytest

from repro.datacenter.builder import build_datacenter
from repro.thermal.heatflow import HeatFlowModel
from repro.thermal.interference import (attach_thermal_model,
                                        exit_coefficients, generate_alpha,
                                        recirculation_coefficients)


@pytest.fixture(scope="module")
def room():
    # 30 nodes = 6 full racks -> balanced labels, exactly feasible
    return build_datacenter(n_nodes=30, n_crac=3,
                            rng=np.random.default_rng(42))


@pytest.fixture(scope="module")
def alpha(room):
    return generate_alpha(room, rng=np.random.default_rng(0))


class TestConstraints:
    def test_rows_sum_to_one(self, room, alpha):
        """Appendix B constraint 1."""
        np.testing.assert_allclose(alpha.sum(axis=1), 1.0, atol=1e-6)

    def test_flow_conservation(self, room, alpha):
        """Appendix B constraint 2: inflow == own flow for every unit."""
        flows = room.unit_flows
        np.testing.assert_allclose(alpha.T @ flows, flows, rtol=1e-5)

    def test_exit_coefficients_in_table2_range(self, room, alpha):
        """Appendix B constraints 3-4."""
        ec = exit_coefficients(alpha, room.n_crac)
        for node in room.nodes:
            from repro.datacenter.layout import TABLE_II_RANGES
            r = TABLE_II_RANGES[node.label]
            assert r.ec_min - 1e-6 <= ec[node.index] <= r.ec_max + 1e-6

    def test_recirculation_in_table2_range(self, room, alpha):
        """Appendix B constraint 5 (flow-weighted)."""
        rc = recirculation_coefficients(alpha, room.unit_flows, room.n_crac)
        for node in room.nodes:
            from repro.datacenter.layout import TABLE_II_RANGES
            r = TABLE_II_RANGES[node.label]
            assert r.rc_min - 1e-6 <= rc[node.index] <= r.rc_max + 1e-6

    def test_facing_crac_receives_dominant_share(self, room, alpha):
        """Constraint 3/4's M matrix: exhaust favors the facing CRAC."""
        for node in room.nodes:
            row = alpha[room.n_crac + node.index, :room.n_crac]
            assert row.argmax() == node.hot_aisle

    def test_nonnegative(self, alpha):
        assert alpha.min() >= 0.0


class TestSampling:
    def test_different_seeds_different_matrices(self, room):
        a1 = generate_alpha(room, rng=np.random.default_rng(1))
        a2 = generate_alpha(room, rng=np.random.default_rng(2))
        assert not np.allclose(a1, a2)

    def test_same_seed_reproducible(self, room):
        a1 = generate_alpha(room, rng=np.random.default_rng(3))
        a2 = generate_alpha(room, rng=np.random.default_rng(3))
        np.testing.assert_allclose(a1, a2)

    def test_unbalanced_room_uses_relaxation(self):
        """A partial-rack room is only feasible with widened ranges."""
        dc = build_datacenter(n_nodes=24, n_crac=3,
                              rng=np.random.default_rng(5))
        alpha = generate_alpha(dc, rng=np.random.default_rng(5))
        # the result must still be a valid flow matrix
        np.testing.assert_allclose(alpha.sum(axis=1), 1.0, atol=1e-6)
        flows = dc.unit_flows
        np.testing.assert_allclose(alpha.T @ flows, flows, rtol=1e-4)

    def test_impossible_ranges_raise(self, room):
        from repro.datacenter.layout import LabelRanges
        from repro.optimize.linprog import InfeasibleError
        # demand all exhaust goes to CRACs *and* heavy recirculation
        impossible = {l: LabelRanges(0.99, 1.0, 0.9, 1.0)
                      for l in "ABCDE"}
        with pytest.raises(InfeasibleError, match="nowhere to go"):
            generate_alpha(room, rng=np.random.default_rng(0),
                           label_ranges=impossible, max_relaxation=0.0)


class TestAttach:
    def test_attaches_working_model(self, room):
        model = attach_thermal_model(room, rng=np.random.default_rng(7))
        assert isinstance(model, HeatFlowModel)
        assert room.thermal is model
        # the attached model conserves energy end to end
        p = room.node_power_kw(room.all_p0_pstates())
        state = model.steady_state(np.full(room.n_crac, 15.0), p)
        assert state.crac_heat_kw.sum() == pytest.approx(p.sum(), rel=1e-6)
