"""CMOS static + dynamic core power model (Appendix A of the paper).

The total power consumption of a core of type *j* running in P-state *k*
is modeled as (Eq. 23)::

    pi[j, k] = SC_j * f[j, k] * V[j, k]**2  +  beta_j * V[j, k]

where the first term is the standard CMOS dynamic dissipation
(``S * C_L * f * V^2`` with ``SC = S * C_L`` assumed P-state independent)
and the second is the static power model of Butts & Sohi [11]
(a constant times the supply voltage).

The paper's simulations do not measure ``SC`` and ``beta`` directly;
instead they fix

* the total per-core power at P-state 0 (from TDP datasheets), and
* the *fraction* of that P-state-0 power that is static (30% or 20%
  depending on the simulation set),

from which both constants follow and the power of every other P-state is
derived.  :func:`pstate_powers` performs that derivation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CmosConstants", "derive_constants", "pstate_powers"]


@dataclass(frozen=True)
class CmosConstants:
    """Fitted constants of Eq. 23 for one core type.

    Attributes
    ----------
    switching_capacitance:
        ``SC = S * C_L`` — effective switched capacitance per cycle.  In
        the library's unit system (power in kW, frequency in MHz,
        voltage in V) its unit is kW / (MHz * V^2).
    static_coefficient:
        ``beta`` — static power per volt of supply, kW/V.
    """

    switching_capacitance: float
    static_coefficient: float

    def power(self, frequency_mhz: float, voltage_v: float) -> float:
        """Total core power (kW) at a frequency/voltage operating point."""
        dynamic = self.switching_capacitance * frequency_mhz * voltage_v ** 2
        static = self.static_coefficient * voltage_v
        return dynamic + static


def derive_constants(p0_power_kw: float, p0_static_fraction: float,
                     p0_frequency_mhz: float, p0_voltage_v: float
                     ) -> CmosConstants:
    """Fit ``SC`` and ``beta`` from the P-state-0 operating point.

    Parameters
    ----------
    p0_power_kw:
        Total per-core power at P-state 0 (e.g. TDP / number of cores).
    p0_static_fraction:
        Fraction of ``p0_power_kw`` that is static (the paper uses 0.3
        in simulation sets 1-2 and 0.2 in set 3).  Must be in (0, 1).
    p0_frequency_mhz, p0_voltage_v:
        Frequency and supply voltage of P-state 0.
    """
    if not 0.0 < p0_static_fraction < 1.0:
        raise ValueError(
            f"static fraction must be in (0, 1), got {p0_static_fraction}")
    if min(p0_power_kw, p0_frequency_mhz, p0_voltage_v) <= 0.0:
        raise ValueError("P-state-0 power, frequency and voltage must be positive")
    static = p0_static_fraction * p0_power_kw
    dynamic = p0_power_kw - static
    beta = static / p0_voltage_v
    sc = dynamic / (p0_frequency_mhz * p0_voltage_v ** 2)
    return CmosConstants(switching_capacitance=sc, static_coefficient=beta)


def pstate_powers(p0_power_kw: float, p0_static_fraction: float,
                  frequencies_mhz: np.ndarray | list[float],
                  voltages_v: np.ndarray | list[float],
                  *, include_off: bool = True) -> np.ndarray:
    """Per-core power of every P-state, kW (Appendix A derivation).

    Parameters
    ----------
    p0_power_kw, p0_static_fraction:
        See :func:`derive_constants`.
    frequencies_mhz, voltages_v:
        Arrays over the *active* P-states (index 0 = P-state 0), strictly
        decreasing frequency is expected but only positivity is enforced.
    include_off:
        When True the returned array gains one trailing entry of 0.0 kW —
        the paper models "core turned off" as one extra highest P-state
        (Section III.C).

    Returns
    -------
    numpy.ndarray
        Power of each P-state, ``len(frequencies) (+1)`` entries, kW.
    """
    freqs = np.asarray(frequencies_mhz, dtype=float)
    volts = np.asarray(voltages_v, dtype=float)
    if freqs.shape != volts.shape or freqs.ndim != 1:
        raise ValueError("frequency and voltage arrays must be equal-length 1-D")
    if freqs.size == 0:
        raise ValueError("need at least one active P-state")
    if np.any(freqs <= 0) or np.any(volts <= 0):
        raise ValueError("frequencies and voltages must be positive")
    constants = derive_constants(p0_power_kw, p0_static_fraction,
                                 float(freqs[0]), float(volts[0]))
    powers = constants.switching_capacitance * freqs * volts ** 2 \
        + constants.static_coefficient * volts
    # Fitting is exact at P-state 0 by construction; enforce it to the
    # last bit so Table I reproduces the datasheet value verbatim.
    powers[0] = p0_power_kw
    if include_off:
        powers = np.append(powers, 0.0)
    return powers


def static_fraction(p0_power_kw: float, p0_static_fraction: float,
                    frequencies_mhz: np.ndarray | list[float],
                    voltages_v: np.ndarray | list[float]) -> np.ndarray:
    """Static share of total power for each active P-state.

    Used to reproduce the per-P-state static percentages annotated on
    Figure 6 of the paper ("The static power consumption percentage for
    the other P-states for each node type is also shown").
    """
    freqs = np.asarray(frequencies_mhz, dtype=float)
    volts = np.asarray(voltages_v, dtype=float)
    constants = derive_constants(p0_power_kw, p0_static_fraction,
                                 float(freqs[0]), float(volts[0]))
    total = pstate_powers(p0_power_kw, p0_static_fraction, freqs, volts,
                          include_off=False)
    static = constants.static_coefficient * volts
    return static / total
