#!/usr/bin/env python
"""Capacity planning — what is a kilowatt of provisioned power worth?

The paper's introduction motivates the whole problem with power-limited
sites ("Morgan Stanley is no longer able physically to get the power
needed to run a new data center in Manhattan").  This example sweeps the
power cap from just-above-idle to flat-out and prints the reward curve,
the marginal reward per kW, and where the thermal-aware technique's edge
over P0-or-off is largest (hint: mid-range caps, where P-state choice
matters most).

Run:  python examples/capacity_planning.py [n_nodes] [seed]
"""

import sys

import numpy as np

from repro.experiments import PAPER_SET_3, generate_scenario, scaled_down
from repro.experiments.sweeps import sweep_power_cap


def main(n_nodes: int = 25, seed: int = 4) -> None:
    scenario = generate_scenario(scaled_down(PAPER_SET_3, n_nodes), seed)
    dc, wl = scenario.datacenter, scenario.workload
    lo, hi = scenario.bounds.p_min, scenario.bounds.p_max
    print(f"room: {dc.n_nodes} nodes; idle {lo:.1f} kW, flat-out "
          f"{hi:.1f} kW (paper cap would be {scenario.p_const:.1f} kW)\n")

    caps = np.linspace(lo * 1.02, hi * 1.05, 8)
    points = sweep_power_cap(dc, wl, caps)

    print(f"{'cap kW':>8}{'reward/s':>10}{'baseline/s':>12}{'edge %':>8}"
          f"{'used kW':>9}{'reward/kW':>11}")
    best_edge = max(points, key=lambda p: p.improvement_pct)
    for p in points:
        marginal = ("      -" if np.isnan(p.marginal_reward_per_kw)
                    else f"{p.marginal_reward_per_kw:>11.1f}")
        print(f"{p.p_const:>8.1f}{p.reward_three_stage:>10.1f}"
              f"{p.reward_baseline:>12.1f}{p.improvement_pct:>+8.2f}"
              f"{p.power_used_kw:>9.1f}{marginal:>11}")
    print(f"\nthermal-aware edge peaks at cap {best_edge.p_const:.1f} kW "
          f"({best_edge.improvement_pct:+.2f}%) — in deeply "
          "oversubscribed rooms P-state choice matters most; near "
          "flat-out, P0-everywhere is optimal and both techniques agree.")
    print("diminishing returns: the marginal reward per provisioned kW "
          "falls as the cap\napproaches flat-out — the room runs out of "
          "high-value work before it runs out of power.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(n, s)
