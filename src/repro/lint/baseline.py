"""Committed baseline of grandfathered findings.

The baseline lets the CI gate demand *zero new* findings while known,
deliberate ones stay documented in one reviewable file.  Entries match
on ``(code, path, context)`` — the stripped source line — rather than
line numbers, so unrelated edits above a grandfathered site do not
invalidate it.  Every entry carries a mandatory ``reason``.

File format (JSON, sorted keys, one entry per kept finding)::

    {
      "schema": 1,
      "entries": [
        {"code": "RL003", "path": "src/repro/datacenter/builder.py",
         "context": "rng = np.random.default_rng()",
         "reason": "documented convenience fallback; callers pass ..."}
      ]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

BASELINE_SCHEMA = 1


class Baseline:
    """Multiset of grandfathered findings keyed on (code, path, context)."""

    def __init__(self, entries: list[dict[str, str]]) -> None:
        self.entries = entries
        self._budget: Counter[tuple[str, str, str]] = Counter(
            self._key_of(e) for e in entries)
        self._used: Counter[tuple[str, str, str]] = Counter()

    @staticmethod
    def _key_of(entry: dict[str, str]) -> tuple[str, str, str]:
        return (entry["code"], entry["path"], entry["context"])

    @staticmethod
    def _key_for(finding: Finding) -> tuple[str, str, str]:
        return (finding.code, finding.path, finding.context)

    def absorb(self, finding: Finding) -> bool:
        """Consume one matching entry; False when none remains."""
        key = self._key_for(finding)
        if self._used[key] < self._budget[key]:
            self._used[key] += 1
            return True
        return False

    def stale_entries(self) -> list[dict[str, str]]:
        """Entries that matched no finding this run (fixed meanwhile)."""
        leftover = self._budget - self._used
        stale: list[dict[str, str]] = []
        seen: Counter[tuple[str, str, str]] = Counter()
        for entry in self.entries:
            key = self._key_of(entry)
            if seen[key] < leftover[key]:
                seen[key] += 1
                stale.append(entry)
        return stale


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return Baseline([])
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline {p}: {exc}") from exc
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {p}: unsupported schema {doc.get('schema')!r}")
    entries = doc.get("entries", [])
    for entry in entries:
        missing = {"code", "path", "context", "reason"} - set(entry)
        if missing:
            raise ValueError(
                f"baseline {p}: entry {entry!r} missing {sorted(missing)}")
    return Baseline(list(entries))


def write_baseline(findings: list[Finding], path: str | Path,
                   reason: str = "TODO: justify this exemption") -> None:
    """Write every finding as a baseline entry (the adoption workflow).

    Reasons default to a marker that reviewers are expected to replace
    — a baseline entry without a real justification defeats its point.
    """
    entries = [
        {"code": f.code, "path": f.path, "context": f.context,
         "reason": reason}
        for f in sorted(findings)
    ]
    doc = {"schema": BASELINE_SCHEMA, "entries": entries}
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
