"""Server-level utilization-based P-state control (the intro's strawman).

Contribution 1 of the paper argues that the common *per-server*
utilization-threshold governors (Tolia et al. [30], the Linux ondemand
governor [25], Elnozahy et al. [13]) are ineffective in a power
constrained data center: "the utilization is often close to 100% because
the data center is often oversubscribed", so every local governor simply
picks P-state 0 and the room blows its power cap.

This module makes that argument quantitative by implementing the closest
sensible adaptation:

1. **Local governor** — each node independently selects the highest
   (weakest) P-state that keeps its core utilization at or below a
   threshold (80% in [30]).  Utilization is demand over capacity; in an
   oversubscribed room demand exceeds capacity at every P-state, so the
   governor lands on P-state 0 (matching the paper's observation).
2. **Power-cap watchdog** — server-level control has no room-level
   coordination knob except emergency capping, so when the resulting
   room violates the power cap or a redline, cores are turned off
   round-robin across nodes (the uncoordinated analogue of a PDU cap)
   until the operating point fits.
3. The reward actually collectable is then computed with the same
   Stage 3 LP used everywhere else, and the CRAC outlet temperatures get
   the same discretized search — so any deficit versus the paper's
   technique (or even the baseline) is attributable to the *assignment*,
   not to the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stage3 import Stage3Solution, solve_stage3
from repro.datacenter.builder import DataCenter
from repro.optimize.search import SearchResult, uniform_then_coordinate_search
from repro.thermal.constraints import ThermalLinearization
from repro.workload.tasktypes import Workload

__all__ = ["ServerLevelSolution", "local_governor_pstate",
           "solve_server_level"]


@dataclass
class ServerLevelSolution:
    """Result of the server-level governor + watchdog technique.

    Attributes
    ----------
    governor_pstate:
        The P-state each node's local governor picked before capping
        (identical for all of a node's cores).
    pstates / tc / reward_rate / t_crac_out:
        Final room state after the watchdog, same shape conventions as
        the other techniques.
    cores_capped:
        How many cores the watchdog had to turn off to fit the cap.
    """

    governor_pstate: np.ndarray
    pstates: np.ndarray
    tc: np.ndarray
    reward_rate: float
    t_crac_out: np.ndarray
    cores_capped: int
    stage3: Stage3Solution


def local_governor_pstate(workload: Workload, node_type_index: int,
                          demand_per_core: float,
                          threshold: float = 0.8) -> int:
    """The per-node utilization governor of [30].

    Picks the highest (weakest) active P-state whose capacity keeps
    utilization at or below ``threshold``; if even P-state 0 is
    saturated (the oversubscribed case) it returns 0.

    ``demand_per_core`` is the offered load in tasks/second per core,
    averaged over task types; capacity at P-state ``k`` is the mean ECS
    over task types.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if demand_per_core < 0:
        raise ValueError("demand must be non-negative")
    ecs = workload.ecs[:, node_type_index, :]
    n_active = ecs.shape[1] - 1
    # weakest-first: the governor raises frequency only when needed
    for k in range(n_active - 1, -1, -1):
        capacity = float(ecs[:, k].mean())
        if capacity > 0 and demand_per_core / capacity <= threshold:
            return k
    return 0


def solve_server_level(datacenter: DataCenter, workload: Workload,
                       p_const: float, threshold: float = 0.8, *,
                       final_step: float = 1.0
                       ) -> tuple[ServerLevelSolution, SearchResult]:
    """Run the governor + watchdog technique under the room's constraints."""
    model = datacenter.require_thermal()
    redline = datacenter.redline_c
    cop_model = datacenter.cracs[0].cop_model
    lows = [c.outlet_range_c[0] for c in datacenter.cracs]
    highs = [c.outlet_range_c[1] for c in datacenter.cracs]

    # 1. local governors: offered load split evenly over all cores
    demand_per_core = float(workload.arrival_rates.sum()) / datacenter.n_cores
    governor = np.asarray([
        local_governor_pstate(workload, t, demand_per_core, threshold)
        for t in datacenter.node_type_index
    ])

    def capped_pstates(lin: ThermalLinearization) -> tuple[np.ndarray, int] | None:
        """Watchdog: round-robin core shutdown until the room fits."""
        pstates = np.repeat(governor, [n.n_cores for n in datacenter.nodes])
        # precompute per-node core power at the governor P-state
        node_power = datacenter.node_power_kw(pstates)
        base_ok = (np.all(lin.inlet_gain @ datacenter.node_base_power
                          <= lin.redline_rhs + 1e-9)
                   and datacenter.node_base_power.sum() + lin.crac_const
                   + float(lin.crac_coeff @ datacenter.node_base_power)
                   <= p_const + 1e-9)
        if not base_ok:
            return None
        # per-node count of live cores; kill one core per node in turn
        live = np.asarray([n.n_cores for n in datacenter.nodes])
        off_state = np.asarray([datacenter.node_types[t].off_pstate
                                for t in datacenter.node_type_index])
        core_cost = np.asarray([
            datacenter.node_types[t].pstate_power_kw[g]
            for t, g in zip(datacenter.node_type_index, governor)
        ])
        capped = 0

        def fits(npow: np.ndarray) -> bool:
            if np.any(lin.inlet_gain @ npow > lin.redline_rhs + 1e-9):
                return False
            total = npow.sum() + lin.crac_const + float(lin.crac_coeff @ npow)
            return total <= p_const + 1e-9

        guard = datacenter.n_cores + 1
        while not fits(node_power) and guard:
            guard -= 1
            # kill a core on the live node with the highest power draw —
            # the only information a rack-level PDU cap has
            candidates = np.nonzero(live > 0)[0]
            if candidates.size == 0:
                break
            j = candidates[int(np.argmax(node_power[candidates]))]
            live[j] -= 1
            node_power[j] -= core_cost[j]
            capped += 1
        if not fits(node_power):
            return None
        # realize: first `live[j]` cores keep the governor state
        pstates = np.empty(datacenter.n_cores, dtype=int)
        for node in datacenter.nodes:
            k = live[node.index]
            sl = slice(node.first_core, node.first_core + node.n_cores)
            pstates[sl] = off_state[node.index]
            pstates[node.first_core:node.first_core + k] = \
                governor[node.index]
        return pstates, capped

    cache: dict[bytes, tuple[np.ndarray, int, Stage3Solution]] = {}

    def objective(t_vec: np.ndarray) -> float | None:
        lin = ThermalLinearization.build(model, t_vec, redline, cop_model)
        out = capped_pstates(lin)
        if out is None:
            return None
        pstates, capped = out
        stage3 = solve_stage3(datacenter, workload, pstates)
        cache[t_vec.tobytes()] = (pstates, capped, stage3)
        return stage3.reward_rate

    result = uniform_then_coordinate_search(
        objective, datacenter.n_crac, min(lows), max(highs),
        step=final_step, maximize=True)
    pstates, capped, stage3 = cache[result.temperatures.tobytes()]
    return ServerLevelSolution(
        governor_pstate=governor,
        pstates=pstates,
        tc=stage3.tc,
        reward_rate=stage3.reward_rate,
        t_crac_out=result.temperatures,
        cores_capped=capped,
        stage3=stage3,
    ), result
