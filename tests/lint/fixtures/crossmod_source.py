"""Cross-module taint fixture: a set crosses a module boundary into a
cache key; the finding's trace must span both files."""

from crossmod_sink import cache_key


def write_key(members) -> str:
    payload = {"members": set(members)}
    return cache_key(payload)
