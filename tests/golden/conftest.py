"""The golden-value harness (docs/KERNELS.md, "Golden workflow").

``golden`` is a fixture-as-function: a test builds a JSON-able document
of headline numbers and calls ``golden("name", document)``.  Normally
the document is compared against the committed baseline
``tests/golden/data/name.json`` — floats within ``REL_TOL``/``ABS_TOL``
(cross-BLAS robustness; see the tolerance policy in docs/KERNELS.md),
everything else exactly — and mismatches fail with a per-path diff
report.  With ``pytest --update-golden`` the baselines are rewritten
from the current code instead; review the resulting git diff like any
other source change.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable, Iterator

import pytest

DATA_DIR = Path(__file__).parent / "data"

#: Float comparison bounds.  Wide enough to absorb BLAS/platform
#: accumulation-order noise, tight enough that any real behavior change
#: (different P-state, different search optimum) fails loudly.
REL_TOL = 1e-6
ABS_TOL = 1e-9

#: Mismatched paths shown before truncating the report.
MAX_DIFFS_SHOWN = 25


def _diff(path: str, expected, got) -> Iterator[str]:
    """Yield one human-readable line per mismatched leaf."""
    # bool is an int subclass: compare it by identity-of-type first so
    # True does not silently match 1.0
    if isinstance(expected, bool) or isinstance(got, bool):
        if expected is not got:
            yield f"{path}: expected {expected!r}, got {got!r}"
        return
    if isinstance(expected, (int, float)) and isinstance(got, (int, float)):
        exp_f, got_f = float(expected), float(got)
        if math.isnan(exp_f) and math.isnan(got_f):
            return
        if not math.isclose(exp_f, got_f, rel_tol=REL_TOL, abs_tol=ABS_TOL):
            yield (f"{path}: expected {expected!r}, got {got!r} "
                   f"(|diff| = {abs(exp_f - got_f):.3e})")
        return
    if type(expected) is not type(got):
        yield (f"{path}: type changed from {type(expected).__name__} "
               f"to {type(got).__name__}")
        return
    if isinstance(expected, dict):
        for key in sorted(expected.keys() - got.keys()):
            yield f"{path}.{key}: missing from current output"
        for key in sorted(got.keys() - expected.keys()):
            yield f"{path}.{key}: not in baseline"
        for key in sorted(expected.keys() & got.keys()):
            yield from _diff(f"{path}.{key}", expected[key], got[key])
        return
    if isinstance(expected, list):
        if len(expected) != len(got):
            yield (f"{path}: length changed from {len(expected)} "
                   f"to {len(got)}")
            return
        for i, (e, g) in enumerate(zip(expected, got)):
            yield from _diff(f"{path}[{i}]", e, g)
        return
    if expected != got:
        yield f"{path}: expected {expected!r}, got {got!r}"


@pytest.fixture
def golden(request) -> Callable[[str, dict], None]:
    update = request.config.getoption("--update-golden")

    def check(name: str, document: dict) -> None:
        path = DATA_DIR / f"{name}.json"
        # round-trip through JSON so the baseline and the live document
        # are compared in the same representation (tuples become lists,
        # numpy scalars must already be plain — a TypeError here means
        # the test forgot a .tolist()/float())
        document = json.loads(json.dumps(document, sort_keys=True))
        if update:
            DATA_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n")
            return
        if not path.exists():
            pytest.fail(
                f"golden baseline {path.name} does not exist; generate it "
                f"with: pytest tests/golden --update-golden", pytrace=False)
        expected = json.loads(path.read_text())
        diffs = list(_diff("$", expected, document))
        if diffs:
            shown = "\n  ".join(diffs[:MAX_DIFFS_SHOWN])
            extra = len(diffs) - MAX_DIFFS_SHOWN
            tail = f"\n  ... and {extra} more" if extra > 0 else ""
            pytest.fail(
                f"golden mismatch vs {path.name} ({len(diffs)} paths):\n"
                f"  {shown}{tail}\n"
                f"(intentional change? refresh with: pytest tests/golden "
                f"--update-golden and review the data diff)", pytrace=False)

    return check
