"""Figure 1 — the hot-aisle/cold-aisle room layout.

Regenerates the paper's room geometry (racks dealt across hot aisles,
one CRAC per aisle, labels A-E bottom-to-top) and prints an ASCII
rendition plus the aggregate flow balance the CRAC sizing rule enforces.
"""

import numpy as np

from repro.datacenter.builder import build_datacenter


def bench_fig1(benchmark, capsys, scale):
    dc = benchmark(build_datacenter, scale.n_nodes, 3,
                   rng=np.random.default_rng(0))

    np.testing.assert_allclose(dc.crac_flows.sum(), dc.node_flows.sum())

    with capsys.disabled():
        print()
        print(f"Figure 1 — layout of a {dc.n_nodes}-node room")
        for aisle in range(dc.n_crac):
            racks = sorted({n.rack for n in dc.nodes
                            if n.hot_aisle == aisle})
            print(f"  hot aisle {aisle} <- CRAC{aisle}: "
                  f"{len(racks)} racks ({racks[:8]}{'...' if len(racks) > 8 else ''})")
        labels = {}
        for n in dc.nodes:
            labels.setdefault(n.label, 0)
            labels[n.label] += 1
        print("  rack slots (bottom->top):",
              "  ".join(f"{l}:{labels.get(l, 0)}" for l in "ABCDE"))
        print(f"  total node air flow {dc.node_flows.sum():.3f} m^3/s == "
              f"total CRAC air flow {dc.crac_flows.sum():.3f} m^3/s")
        mix = np.bincount(dc.node_type_index, minlength=2)
        print(f"  node types: {mix[0]} x {dc.node_types[0].name}, "
              f"{mix[1]} x {dc.node_types[1].name}")
