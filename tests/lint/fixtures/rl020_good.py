"""RL020 good: specific catches, or broad with a re-raise."""

import logging


def catch_specific(solve):
    try:
        return solve()
    except (ValueError, ArithmeticError):
        return None


def log_and_reraise(solve):
    try:
        return solve()
    except Exception:
        logging.getLogger(__name__).exception("solve failed")
        raise
