"""RL030 bad: cross-dimension arithmetic and comparisons."""


def cooling_power_kw(flow_m3s: float) -> float:
    return 1.2 * flow_m3s


def overheat(t_in_c: float, node_kw: float, limit_c: float) -> float:
    drift = t_in_c - node_kw             # line 9: temperature - power
    if t_in_c > node_kw:                 # line 10: comparison mixes dims
        return drift
    return limit_c - cooling_power_kw(0.07)  # line 12: via call summary
