"""Tests for repro.core.reward — the RR_{i,j} functions (Figs. 3-4)."""

import numpy as np
import pytest

from repro.core.reward import reward_power_ratio, reward_rate_function
from repro.experiments.figures import example_node_type, example_workload


class TestFigure3:
    def test_exact_paper_points(self):
        """Figure 3: (0,0), (0.05,0.5), (0.1,0.9), (0.15,1.2)."""
        rr = reward_rate_function(example_workload(10.0), 0,
                                  example_node_type(), 0)
        np.testing.assert_allclose(rr.x, [0.0, 0.05, 0.10, 0.15])
        np.testing.assert_allclose(rr.y, [0.0, 0.5, 0.9, 1.2])

    def test_interpolation_between_pstates(self):
        """Time-multiplexing two P-states averages their reward rates."""
        rr = reward_rate_function(example_workload(10.0), 0,
                                  example_node_type(), 0)
        assert rr(0.125) == pytest.approx((0.9 + 1.2) / 2)


class TestFigure4:
    def test_deadline_zeroes_slow_pstate(self):
        """m_i = 1.5 < 1/0.5: P-state 2's point drops to zero reward."""
        rr = reward_rate_function(example_workload(1.5), 0,
                                  example_node_type(), 0)
        np.testing.assert_allclose(rr.y, [0.0, 0.0, 0.9, 1.2])

    def test_non_concave_after_deadline(self):
        rr = reward_rate_function(example_workload(1.5), 0,
                                  example_node_type(), 0)
        assert not rr.is_concave()

    def test_deadline_boundary_inclusive(self):
        """exec time exactly equal to m_i still meets the deadline."""
        rr = reward_rate_function(example_workload(2.0), 0,
                                  example_node_type(), 0)
        assert rr(0.05) == pytest.approx(0.5)  # 1/0.5 = 2.0 <= 2.0

    def test_apply_deadline_false_gives_raw(self):
        rr = reward_rate_function(example_workload(1.5), 0,
                                  example_node_type(), 0,
                                  apply_deadline=False)
        np.testing.assert_allclose(rr.y, [0.0, 0.5, 0.9, 1.2])


class TestOnGeneratedWorkloads:
    def test_scales_with_reward(self, small_dc, small_workload):
        spec = small_dc.node_types[0]
        rr = reward_rate_function(small_workload, 2, spec, 0)
        at_p0 = rr(spec.p0_power_kw)
        expect = small_workload.rewards[2] * small_workload.ecs[2, 0, 0]
        # P0 always meets the deadline (Eq. 14 guarantees some core can,
        # but for *this* core type only if fast enough)
        if small_workload.can_meet_deadline(2, 0, 0):
            assert at_p0 == pytest.approx(expect)
        else:
            assert at_p0 == 0.0

    def test_zero_at_zero_power(self, small_dc, small_workload):
        for j, spec in enumerate(small_dc.node_types):
            for i in range(small_workload.n_task_types):
                rr = reward_rate_function(small_workload, i, spec, j)
                assert rr(0.0) == 0.0

    def test_mismatched_pstate_count_rejected(self, small_workload):
        bad_spec = example_node_type()  # 4 states vs workload's 5
        with pytest.raises(ValueError, match="P-states"):
            reward_rate_function(small_workload, 0, bad_spec, 0)


class TestRewardPowerRatio:
    def test_paper_example_value(self):
        """Fig. 3 setup: mean of (0.5/0.05, 0.9/0.1, 1.2/0.15)."""
        ratio = reward_power_ratio(example_workload(10.0), 0,
                                   example_node_type(), 0)
        assert ratio == pytest.approx(np.mean([10.0, 9.0, 8.0]))

    def test_deadline_lowers_ratio(self):
        full = reward_power_ratio(example_workload(10.0), 0,
                                  example_node_type(), 0)
        cut = reward_power_ratio(example_workload(1.5), 0,
                                 example_node_type(), 0)
        assert cut < full
