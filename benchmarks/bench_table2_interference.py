"""Table II — EC/RC ranges, validated against a generated room.

Times the Appendix B LP-feasibility generation and prints both the
Table II ranges and the realized per-label coefficient statistics of the
sampled cross-interference matrix (which must fall inside the ranges for
balanced rooms).
"""

import numpy as np

from repro.datacenter.layout import RACK_LABELS, TABLE_II_RANGES
from repro.experiments.tables import format_table2
from repro.thermal.interference import (exit_coefficients, generate_alpha,
                                        recirculation_coefficients)


def bench_table2(benchmark, capsys, bench_scenario):
    dc = bench_scenario.datacenter
    alpha = benchmark(generate_alpha, dc,
                      rng=np.random.default_rng(2))
    ec = exit_coefficients(alpha, dc.n_crac)
    rc = recirculation_coefficients(alpha, dc.unit_flows, dc.n_crac)

    with capsys.disabled():
        print()
        print(format_table2())
        print(f"\nrealized coefficients over a generated {dc.n_nodes}-node "
              "room:")
        print(f"{'label':<8}{'EC mean':>10}{'RC mean':>10}")
        for label in RACK_LABELS:
            idx = dc.layout.nodes_with_label(label)
            if idx.size == 0:
                continue
            r = TABLE_II_RANGES[label]
            ec_mean = ec[idx].mean()
            rc_mean = rc[idx].mean()
            print(f"{label:<8}{ec_mean:>10.3f}{rc_mean:>10.3f}")
            # balanced rooms satisfy the exact ranges
            if dc.n_nodes % len(RACK_LABELS) == 0:
                assert np.all(ec[idx] >= r.ec_min - 1e-6)
                assert np.all(ec[idx] <= r.ec_max + 1e-6)
                assert np.all(rc[idx] >= r.rc_min - 1e-6)
                assert np.all(rc[idx] <= r.rc_max + 1e-6)
