"""Tests for repro.power.cmos — the Appendix A power model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.cmos import (derive_constants, pstate_powers,
                              static_fraction)

# AMD Opteron 8381 HE ladder (Appendix A / Table I, node type 1)
AMD_FREQS = np.asarray([2500.0, 2100.0, 1700.0, 800.0])
AMD_VOLTS = np.asarray([1.325, 1.25, 1.175, 1.025])
AMD_P0_KW = 0.01375


class TestDeriveConstants:
    def test_reconstructs_p0(self):
        c = derive_constants(AMD_P0_KW, 0.3, AMD_FREQS[0], AMD_VOLTS[0])
        assert c.power(AMD_FREQS[0], AMD_VOLTS[0]) == pytest.approx(AMD_P0_KW)

    def test_static_share_at_p0(self):
        c = derive_constants(AMD_P0_KW, 0.3, AMD_FREQS[0], AMD_VOLTS[0])
        static = c.static_coefficient * AMD_VOLTS[0]
        assert static / AMD_P0_KW == pytest.approx(0.3)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_bad_static_fraction(self, bad):
        with pytest.raises(ValueError, match="static fraction"):
            derive_constants(AMD_P0_KW, bad, 2500.0, 1.3)

    def test_bad_operating_point(self):
        with pytest.raises(ValueError, match="positive"):
            derive_constants(0.0, 0.3, 2500.0, 1.3)


class TestPstatePowers:
    def test_p0_exact(self):
        powers = pstate_powers(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS)
        assert powers[0] == AMD_P0_KW

    def test_strictly_decreasing(self):
        powers = pstate_powers(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS)
        assert np.all(np.diff(powers) < 0)

    def test_off_state_appended(self):
        powers = pstate_powers(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS)
        assert powers.size == AMD_FREQS.size + 1
        assert powers[-1] == 0.0

    def test_without_off_state(self):
        powers = pstate_powers(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS,
                               include_off=False)
        assert powers.size == AMD_FREQS.size

    def test_lower_static_fraction_lowers_slow_pstates(self):
        """Dynamic power scales with f*V^2, static only with V — so a
        smaller static share makes slow P-states relatively cheaper."""
        p30 = pstate_powers(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS)
        p20 = pstate_powers(AMD_P0_KW, 0.2, AMD_FREQS, AMD_VOLTS)
        assert p20[0] == p30[0]
        assert np.all(p20[1:-1] < p30[1:-1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            pstate_powers(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS[:-1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            pstate_powers(AMD_P0_KW, 0.3, [], [])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            pstate_powers(AMD_P0_KW, 0.3, [2500.0, -1.0], [1.3, 1.2])

    @given(frac=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_decomposition_sums_to_total(self, frac):
        """static + dynamic = total for every P-state."""
        c = derive_constants(AMD_P0_KW, frac, AMD_FREQS[0], AMD_VOLTS[0])
        powers = pstate_powers(AMD_P0_KW, frac, AMD_FREQS, AMD_VOLTS,
                               include_off=False)
        for f, v, p in zip(AMD_FREQS, AMD_VOLTS, powers):
            static = c.static_coefficient * v
            dynamic = c.switching_capacitance * f * v ** 2
            assert static + dynamic == pytest.approx(p, rel=1e-9)


class TestStaticFraction:
    def test_p0_matches_input(self):
        fracs = static_fraction(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS)
        assert fracs[0] == pytest.approx(0.3)

    def test_increases_for_slower_pstates(self):
        """Figure 6 annotation: slow P-states are more static-dominated."""
        fracs = static_fraction(AMD_P0_KW, 0.3, AMD_FREQS, AMD_VOLTS)
        assert np.all(np.diff(fracs) > 0)

    def test_bounded(self):
        fracs = static_fraction(AMD_P0_KW, 0.2, AMD_FREQS, AMD_VOLTS)
        assert np.all((fracs > 0) & (fracs < 1))
