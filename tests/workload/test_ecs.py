"""Tests for repro.workload.ecs — Section VI.C matrix generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter.coretypes import paper_node_types
from repro.workload.ecs import (extend_ecs, generate_ecs, generate_p0_ecs,
                                task_type_means)

TYPES = paper_node_types()


class TestTaskTypeMeans:
    def test_doubling(self):
        m = task_type_means(8)
        np.testing.assert_allclose(m[1:] / m[:-1], 2.0)

    def test_normalized_mean(self):
        assert task_type_means(8).mean() == pytest.approx(1.0)

    def test_single_type(self):
        np.testing.assert_allclose(task_type_means(1), [1.0])

    def test_bad_count(self):
        with pytest.raises(ValueError, match="positive"):
            task_type_means(0)


class TestP0Matrix:
    def test_shape(self):
        m = generate_p0_ecs(8, TYPES, np.random.default_rng(0))
        assert m.shape == (8, 2)

    def test_node_type_ratio(self):
        """Type 1 : type 2 averages out to 0.6 : 1 (V_ecs-noisy)."""
        m = generate_p0_ecs(200, TYPES, np.random.default_rng(0), v_ecs=0.1)
        # remove the task-mean factor by looking at column ratio per row
        ratios = m[:, 0] / m[:, 1]
        assert ratios.mean() == pytest.approx(0.6, rel=0.05)

    def test_variation_bounded(self):
        m = generate_p0_ecs(8, TYPES, np.random.default_rng(0), v_ecs=0.1)
        means = task_type_means(8)
        scales = np.asarray([t.performance_scale for t in TYPES])
        factor = m / (means[:, None] * scales[None, :])
        assert np.all((factor >= 0.9) & (factor <= 1.1))

    def test_zero_variation(self):
        m = generate_p0_ecs(4, TYPES, np.random.default_rng(0), v_ecs=0.0)
        means = task_type_means(4)
        scales = np.asarray([t.performance_scale for t in TYPES])
        np.testing.assert_allclose(m, means[:, None] * scales[None, :])

    def test_bad_v_ecs(self):
        with pytest.raises(ValueError, match="v_ecs"):
            generate_p0_ecs(4, TYPES, np.random.default_rng(0), v_ecs=1.0)

    def test_empty_types(self):
        with pytest.raises(ValueError, match="node type"):
            generate_p0_ecs(4, [], np.random.default_rng(0))


class TestExtend:
    def test_shape_includes_off_state(self):
        ecs = generate_ecs(8, TYPES, np.random.default_rng(0))
        assert ecs.shape == (8, 2, 5)

    def test_off_state_zero(self):
        ecs = generate_ecs(8, TYPES, np.random.default_rng(0))
        np.testing.assert_allclose(ecs[:, :, -1], 0.0)

    def test_monotone_decreasing_in_pstate(self):
        """The Section VI.C repair: higher P-state never faster."""
        for v_prop in (0.1, 0.3):
            ecs = generate_ecs(8, TYPES, np.random.default_rng(1),
                               v_prop=v_prop)
            active = ecs[:, :, :-1]
            assert np.all(np.diff(active, axis=2) < 0)

    def test_p0_slice_preserved(self):
        rng = np.random.default_rng(2)
        p0 = generate_p0_ecs(8, TYPES, rng)
        ecs = extend_ecs(p0, TYPES, rng)
        np.testing.assert_allclose(ecs[:, :, 0], p0)

    def test_eq10_frequency_scaling(self):
        """With zero variation, ECS scales exactly with clock ratio."""
        rng = np.random.default_rng(3)
        p0 = generate_p0_ecs(4, TYPES, rng)
        ecs = extend_ecs(p0, TYPES, rng, v_prop=0.0)
        for j, spec in enumerate(TYPES):
            freqs = np.asarray(spec.frequencies_mhz)
            for k in range(1, 4):
                np.testing.assert_allclose(
                    ecs[:, j, k], p0[:, j] * freqs[k] / freqs[0])

    def test_variation_bounded_around_frequency_ratio(self):
        rng = np.random.default_rng(4)
        p0 = generate_p0_ecs(8, TYPES, rng)
        ecs = extend_ecs(p0, TYPES, rng, v_prop=0.3)
        for j, spec in enumerate(TYPES):
            freqs = np.asarray(spec.frequencies_mhz)
            for k in range(1, 4):
                factor = ecs[:, j, k] / (p0[:, j] * freqs[k] / freqs[0])
                assert np.all((factor >= 0.7 - 1e-9)
                              & (factor <= 1.3 + 1e-9))

    def test_mismatched_catalog_rejected(self):
        p0 = np.ones((4, 3))
        with pytest.raises(ValueError, match="node types"):
            extend_ecs(p0, TYPES, np.random.default_rng(0))

    def test_bad_v_prop(self):
        p0 = generate_p0_ecs(4, TYPES, np.random.default_rng(0))
        with pytest.raises(ValueError, match="v_prop"):
            extend_ecs(p0, TYPES, np.random.default_rng(0), v_prop=-0.1)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_always_positive_and_monotone(self, seed):
        ecs = generate_ecs(4, TYPES, np.random.default_rng(seed),
                           v_prop=0.3)
        active = ecs[:, :, :-1]
        assert np.all(active > 0)
        assert np.all(np.diff(active, axis=2) < 0)
