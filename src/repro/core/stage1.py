"""Stage 1 — power-to-cores and CRAC outlet assignment (Section V.B.2).

For *fixed* CRAC outlet temperatures the relaxed problem (Eq. 9) is a
linear program: maximize the summed concave ``ARR`` of every core subject
to the total power cap (Constraint 1) and the redlines (Constraint 2),
both of which are affine in node powers
(:class:`repro.thermal.constraints.ThermalLinearization`).

Scalability comes from an exact aggregation (DESIGN.md §3.1): cores in a
node are identical and ``ARR`` is concave, so the node's best aggregate
reward from total core power ``C`` is the concave PWL whose segments are
the per-core hull segments with capacities multiplied by the core count.
The LP therefore has one variable per (node, hull segment) —
``O(NCN * eta)`` — instead of one per core, and per-core powers are
recovered by a breakpoint-quantized greedy fill whose values are real
P-state powers except for at most one partial core per node (which keeps
the Stage 2 integer conversion nearly lossless).

The outer search over CRAC outlet temperatures is the paper's
coarse-to-fine discretized scan (:func:`repro.optimize.search.coarse_to_fine_search`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.core.arr import AggregateRewardRate, aggregate_reward_rate
from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.core.warmstart import WarmContext
from repro.optimize.linprog import (InfeasibleError, LinearProgram,
                                    LPSolution, LPWarmStart)
from repro.optimize.search import (SearchResult, coarse_to_fine_search,
                                   seeded_coordinate_search,
                                   uniform_then_coordinate_search)
from repro.thermal.constraints import ThermalLinearization
from repro.workload.tasktypes import Workload

__all__ = ["Stage1Solution", "build_arr_functions",
           "solve_stage1_fixed_temps", "solve_stage1", "distribute_node_power"]


@dataclass
class Stage1Solution:
    """Output of Stage 1 for one CRAC outlet vector.

    Attributes
    ----------
    t_crac_out:
        Assigned CRAC outlet temperatures, C.
    core_power_kw:
        ``PCORE_k`` for every core (global index), kW.
    node_power_kw:
        Total node power including base, kW (Eq. 1 with relaxed cores).
    objective:
        Predicted aggregate reward rate (the Eq. 9 objective).
    linearization:
        The thermal/power linear view the LP was built from, reused by
        Stage 2 feasibility checks.
    arr_functions:
        ``ARR_j`` per node type, as used (for diagnostics/plots).
    """

    t_crac_out: np.ndarray
    core_power_kw: np.ndarray
    node_power_kw: np.ndarray
    objective: float
    linearization: ThermalLinearization
    arr_functions: list[AggregateRewardRate]


def build_arr_functions(datacenter: DataCenter, workload: Workload,
                        psi: float) -> list[AggregateRewardRate]:
    """One ``ARR_j`` per node type in the catalog."""
    return [
        aggregate_reward_rate(workload, spec, t, psi)
        for t, spec in enumerate(datacenter.node_types)
    ]


def _node_segments(datacenter: DataCenter,
                   arrs: list[AggregateRewardRate]
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-node hull segments for the LP (via the active kernel).

    Returns ``(node_of_var, capacity, slope)`` — one entry per
    (node, segment) variable; capacity is segment length times the
    node's core count.
    """
    return kernels.active().assemble_segments(datacenter, arrs)


#: Sentinel distinguishing "no cache entry" from a cached infeasibility.
_LP_MISS = object()


def solve_stage1_fixed_temps(datacenter: DataCenter,
                             arrs: list[AggregateRewardRate],
                             linearization: ThermalLinearization,
                             p_const: float,
                             disabled_nodes: np.ndarray | None = None,
                             *,
                             segments: tuple[np.ndarray, np.ndarray,
                                             np.ndarray] | None = None,
                             lp_cache: dict[str, LPSolution | None]
                             | None = None,
                             lp_key: str | None = None
                             ) -> Stage1Solution | None:
    """Solve the Stage 1 LP at fixed CRAC outlet temperatures.

    Returns ``None`` when the temperatures admit no feasible operating
    point (even all-cores-off violates a redline or the power cap) or
    when the linearized CRAC model is invalid at the optimum (a CRAC's
    inlet below its outlet, so Eq. 3 would clamp; see DESIGN.md §3.3).

    ``disabled_nodes`` (boolean mask) removes nodes' cores from the
    optimization — used by the consolidation extension for powered-down
    chassis, whose base power the caller zeroes separately.

    ``segments`` lets the caller hoist the (temperature-independent)
    hull-segment assembly out of the probe loop.  ``lp_cache`` /
    ``lp_key`` plug the warm-start replay of
    :class:`repro.optimize.linprog.LPWarmStart`: when the key is
    present, the stored LP solution (or stored infeasibility) is
    replayed bit-for-bit; otherwise the cold solve's outcome is cached
    under it.  The key must determine the assembled LP exactly — Stage 1
    derives it from the warm-start digests (see
    :mod:`repro.core.warmstart`).
    """
    lin = linearization
    base = datacenter.node_base_power
    gain = lin.inlet_gain                       # (n_units, n_nodes)
    # Feasibility with all cores off: redlines and cap at base power.
    base_inlet_load = gain @ base
    if np.any(base_inlet_load > lin.redline_rhs + 1e-9):
        return None
    base_total = float(base.sum()) + lin.crac_const + float(lin.crac_coeff @ base)
    if base_total > p_const + 1e-9:
        return None

    node_of_var, caps, slopes = segments if segments is not None \
        else _node_segments(datacenter, arrs)
    if disabled_nodes is not None:
        disabled_nodes = np.asarray(disabled_nodes, dtype=bool)
        if disabled_nodes.shape != (datacenter.n_nodes,):
            raise ValueError("disabled_nodes mask shape mismatch")
        caps = np.where(disabled_nodes[node_of_var], 0.0, caps)
    n_vars = caps.size
    lp = LinearProgram(name="stage1", maximize=True)
    lp.add_variables(n_vars, lb=0.0, ub=caps, objective=slopes)

    # Redline rows: gain[u] @ (base + C) <= redline_rhs[u].
    # Expand node coefficients onto segment variables.
    rows = gain[:, node_of_var]
    rhs = lin.redline_rhs - base_inlet_load
    lp.add_dense_le_rows(rows, rhs)

    # Power cap: sum_j (1 + crac_coeff_j) * C_j <= Pconst - base_total.
    power_row = (1.0 + lin.crac_coeff)[node_of_var]
    lp.add_dense_le_rows(power_row[None, :], np.asarray([p_const - base_total]))

    caching = lp_cache is not None and lp_key is not None
    warm = None
    if caching:
        cached = lp_cache.get(lp_key, _LP_MISS)
        if cached is None:      # this exact LP was infeasible before
            obs_metrics.counter("stage1.infeasible_lp_replays").inc()
            return None
        if cached is not _LP_MISS:
            warm = LPWarmStart(fingerprint=lp_key, solution=cached)
    try:
        sol = lp.solve(warm_start=warm,
                       fingerprint=lp_key if caching else None)
    except InfeasibleError:
        if caching:
            lp_cache[lp_key] = None
        return None
    if caching and warm is None:
        lp_cache[lp_key] = sol

    fills = sol.x
    core_sums = np.bincount(node_of_var, weights=fills,
                            minlength=datacenter.n_nodes)
    node_power = base + core_sums
    # Validity of the linearized CRAC power: every CRAC inlet must be at
    # or above its assigned outlet, otherwise Eq. 3 clamps and the LP
    # under-counted cooling power.
    t_in = lin.inlet_temperatures(node_power)
    n_crac = lin.t_crac_out.size
    if np.any(t_in[:n_crac] < lin.t_crac_out - 1e-6):
        return None
    core_power = distribute_node_power(datacenter, arrs, core_sums)
    return Stage1Solution(
        t_crac_out=lin.t_crac_out.copy(),
        core_power_kw=core_power,
        node_power_kw=node_power,
        objective=float(sol.objective),
        linearization=lin,
        arr_functions=arrs,
    )


def distribute_node_power(datacenter: DataCenter,
                          arrs: list[AggregateRewardRate],
                          node_core_power: np.ndarray) -> np.ndarray:
    """Split each node's total core power onto its cores.

    Breakpoint-quantized greedy (DESIGN.md §3.1): raise all cores of the
    node through the concave-hull breakpoints in order; within the last
    affordable level, advance as many whole cores as possible and give
    the remainder to a single partial core.  Every resulting per-core
    power is a hull breakpoint (a real, "good" P-state power) except at
    most one per node, and the summed ``ARR`` equals the LP objective.
    Dispatches to the active kernel (``docs/KERNELS.md``); the kernels
    agree bit-for-bit.
    """
    return kernels.active().distribute_node_power(datacenter, arrs,
                                                  node_core_power)


def solve_stage1(datacenter: DataCenter, workload: Workload, *,
                 p_const: float, psi: float = 50.0,
                 search: str = "fast",
                 coarse_step: float = 5.0,
                 final_step: float = 1.0,
                 disabled_nodes: np.ndarray | None = None,
                 warm: WarmContext | None = None
                 ) -> tuple[Stage1Solution, SearchResult]:
    """Full Stage 1: discretized CRAC temperature search around the LP.

    The canonical call is ``solve_stage1(datacenter, workload,
    p_const=cap, psi=50.0)`` — the same ``(datacenter, workload,
    p_const)`` order as every other solver (see
    :mod:`repro.core.api`); every tuning knob is keyword-only.

    Parameters
    ----------
    search:
        ``"fast"`` — uniform scalar scan at 1-degree granularity plus
        coordinate descent (near-optimal for homogeneous CRACs, and the
        default because the full grid "increases exponentially with the
        number of CRAC units" as the paper notes); ``"full"`` — the
        paper's coarse-to-fine product-grid scan.
    warm:
        A :class:`repro.core.warmstart.WarmContext` carrying the
        previous solve's caches; ARR hulls, hull segments, thermal
        linearizations and LP solutions replay from it (value-exact by
        construction), and — in ``"fast"`` mode with a seed vector — the
        scalar scan is replaced by coordinate descent from the previous
        optimum, with a cold fallback when the seed went infeasible.

    Returns the best solution and the search trace.  Raises
    ``RuntimeError`` if no outlet-temperature vector admits a feasible
    operating point (e.g. ``p_const`` below the idle power of the room).
    """
    model = datacenter.require_thermal()
    redline = datacenter.redline_c
    lows = [c.outlet_range_c[0] for c in datacenter.cracs]
    highs = [c.outlet_range_c[1] for c in datacenter.cracs]
    if warm is not None and warm.arrs is not None:
        arrs = warm.arrs
    else:
        arrs = build_arr_functions(datacenter, workload, psi)
    if warm is not None and warm.segments is not None:
        segments = warm.segments
    else:
        segments = _node_segments(datacenter, arrs)
    if warm is not None:
        warm.arrs = arrs
        warm.segments = segments
    # the active kernel picks the CoP evaluation strategy (direct vs
    # memoized lookup — bit-identical values either way)
    cop_model = kernels.active().wrap_cop(datacenter.cracs[0].cop_model)
    # linearizations are pure in (structure, t_vec); memoize per solve
    # and across warm-chained solves
    lin_cache = warm.lin_cache if warm is not None else {}
    lp_cache = warm.lp_cache if warm is not None else None
    if disabled_nodes is None:
        disabled_key = "-"
    else:
        disabled_key = np.asarray(disabled_nodes,
                                  dtype=bool).tobytes().hex()
    key_prefix = f"{warm.stage1_key if warm is not None else ''}" \
                 f"|d{disabled_key}|t"
    best: dict[bytes, Stage1Solution] = {}
    probes = infeasible = 0

    def objective(t_vec: np.ndarray) -> float | None:
        nonlocal probes, infeasible
        probes += 1
        t_key = t_vec.tobytes()
        lin = lin_cache.get(t_key)
        if lin is None:
            lin = ThermalLinearization.build(model, t_vec, redline,
                                             cop_model)
            lin_cache[t_key] = lin
        sol = solve_stage1_fixed_temps(
            datacenter, arrs, lin, p_const, disabled_nodes=disabled_nodes,
            segments=segments, lp_cache=lp_cache,
            lp_key=key_prefix + t_key.hex() if lp_cache is not None
            else None)
        if sol is None:
            infeasible += 1
            return None
        best[t_key] = sol
        return sol.objective

    seed = warm.seed_t if warm is not None else None
    with obs_span("stage1", mode=search, n_crac=datacenter.n_crac):
        result = None
        if search == "fast":
            if seed is not None:
                result = seeded_coordinate_search(
                    objective, seed, datacenter.n_crac, min(lows),
                    max(highs), step=final_step, maximize=True)
                if result is not None:
                    obs_metrics.counter("stage1.warm_seeded").inc()
            if result is None:
                result = uniform_then_coordinate_search(
                    objective, datacenter.n_crac, min(lows), max(highs),
                    step=final_step, maximize=True)
        elif search == "full":
            result = coarse_to_fine_search(
                objective, datacenter.n_crac, min(lows), max(highs),
                coarse_step=coarse_step, final_step=final_step,
                uniform_first=True, maximize=True)
        else:
            raise ValueError(
                f"unknown search mode {search!r} (use 'fast' or 'full')")
        obs_annotate(probes=probes, infeasible_probes=infeasible,
                     warm_seeded=seed is not None)
        obs_metrics.counter("stage1.probes").inc(probes)
        obs_metrics.counter("stage1.infeasible_probes").inc(infeasible)
    solution = best[result.temperatures.tobytes()]
    return solution, result
