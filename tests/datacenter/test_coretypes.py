"""Tests for repro.datacenter.coretypes — Table I node types."""

import numpy as np
import pytest

from repro.datacenter.coretypes import (NodeTypeSpec, hp_proliant_dl785_g5,
                                        nec_express5800_a1080a,
                                        paper_node_types)


class TestTableI:
    """Every row of Table I, checked against the paper."""

    def test_type1_parameters(self):
        t1 = hp_proliant_dl785_g5()
        assert t1.base_power_kw == pytest.approx(0.353)
        assert t1.cores_per_node == 32
        assert t1.n_active_pstates == 4
        assert t1.p0_power_kw == pytest.approx(0.01375)
        assert t1.frequencies_mhz == (2500.0, 2100.0, 1700.0, 800.0)
        assert t1.flow_m3s == pytest.approx(0.07)

    def test_type2_parameters(self):
        t2 = nec_express5800_a1080a()
        assert t2.base_power_kw == pytest.approx(0.418)
        assert t2.cores_per_node == 32
        assert t2.n_active_pstates == 4
        assert t2.p0_power_kw == pytest.approx(0.01625)
        assert t2.frequencies_mhz == (2666.0, 2200.0, 1700.0, 1000.0)
        assert t2.flow_m3s == pytest.approx(0.0828)

    def test_performance_ratio(self):
        """Section VI.C: node type 1 : type 2 performance is 0.6 : 1."""
        t1, t2 = paper_node_types()
        assert t1.performance_scale / t2.performance_scale \
            == pytest.approx(0.6)

    def test_type1_full_load_power(self):
        """Appendix A: server power at 100% utilization was 0.793 kW."""
        t1 = hp_proliant_dl785_g5()
        assert t1.max_node_power_kw == pytest.approx(0.793)

    def test_type1_max_temperature_rise(self):
        """Appendix A: air flow guarantees at most a 9.4 C rise."""
        assert hp_proliant_dl785_g5().max_delta_t() == pytest.approx(
            9.4, abs=0.05)

    def test_static_fraction_parameterizes_ladder(self):
        p30 = hp_proliant_dl785_g5(0.3).pstate_power_kw
        p20 = hp_proliant_dl785_g5(0.2).pstate_power_kw
        assert p30[0] == p20[0]
        assert p30[1] > p20[1]


class TestSpecInvariants:
    def test_off_pstate_index(self):
        t1 = hp_proliant_dl785_g5()
        assert t1.off_pstate == 4
        assert t1.n_pstates == 5
        assert t1.core_power(t1.off_pstate) == 0.0

    def test_core_power_bounds_check(self):
        t1 = hp_proliant_dl785_g5()
        with pytest.raises(IndexError):
            t1.core_power(5)
        with pytest.raises(IndexError):
            t1.core_power(-1)

    def test_powers_strictly_decreasing(self):
        for spec in paper_node_types():
            assert all(np.diff(spec.pstate_power_kw) < 0)

    def _valid_kwargs(self):
        return dict(name="x", base_power_kw=0.1, cores_per_node=2,
                    frequencies_mhz=(2000.0, 1000.0), voltages_v=(1.2, 1.0),
                    pstate_power_kw=(0.01, 0.005, 0.0), flow_m3s=0.05,
                    performance_scale=1.0, static_fraction_p0=0.3)

    def test_validation_rejects_bad_off_state(self):
        kwargs = self._valid_kwargs()
        kwargs["pstate_power_kw"] = (0.01, 0.005, 0.001)
        with pytest.raises(ValueError, match="off P-state"):
            NodeTypeSpec(**kwargs)

    def test_validation_rejects_nondecreasing_powers(self):
        kwargs = self._valid_kwargs()
        kwargs["pstate_power_kw"] = (0.005, 0.01, 0.0)
        with pytest.raises(ValueError, match="decreasing"):
            NodeTypeSpec(**kwargs)

    def test_validation_rejects_length_mismatch(self):
        kwargs = self._valid_kwargs()
        kwargs["pstate_power_kw"] = (0.01, 0.0)
        with pytest.raises(ValueError, match="off state"):
            NodeTypeSpec(**kwargs)

    def test_validation_rejects_zero_cores(self):
        kwargs = self._valid_kwargs()
        kwargs["cores_per_node"] = 0
        with pytest.raises(ValueError, match="cores_per_node"):
            NodeTypeSpec(**kwargs)

    def test_validation_rejects_bad_flow(self):
        kwargs = self._valid_kwargs()
        kwargs["flow_m3s"] = 0.0
        with pytest.raises(ValueError, match="flow"):
            NodeTypeSpec(**kwargs)
