"""Tests for repro.simulate.engine — DES replay of the second step."""

import numpy as np
import pytest

from repro.simulate.engine import simulate_trace
from repro.workload.trace import Task, generate_trace


@pytest.fixture(scope="module")
def des_run(scenario, assignment):
    rng = np.random.default_rng(99)
    trace = generate_trace(scenario.workload, 20.0, rng)
    metrics = simulate_trace(scenario.datacenter, scenario.workload,
                             assignment.tc, assignment.pstates, trace,
                             duration=20.0)
    return trace, metrics


class TestAccounting:
    def test_every_task_completed_or_dropped(self, des_run):
        trace, metrics = des_run
        assert metrics.completed.sum() + metrics.dropped.sum() == len(trace)

    def test_reward_matches_completions(self, scenario, des_run):
        _, metrics = des_run
        expect = float(scenario.workload.rewards @ metrics.completed)
        assert metrics.total_reward == pytest.approx(expect)

    def test_atc_matches_counts(self, des_run):
        trace, metrics = des_run
        assert metrics.atc.sum() * metrics.duration == pytest.approx(
            metrics.completed.sum())

    def test_utilization_bounded(self, des_run):
        _, metrics = des_run
        u = metrics.utilization
        assert np.all(u >= 0.0)
        assert np.all(u <= 1.0 + 1e-9)

    def test_achieved_close_to_plan(self, scenario, assignment, des_run):
        """The DES should realize a large share of the fluid plan."""
        _, metrics = des_run
        assert metrics.reward_rate >= 0.7 * assignment.reward_rate

    def test_achieved_not_above_plan_much(self, scenario, assignment,
                                          des_run):
        """ATC/TC <= 1 caps the scheduler near the plan (Poisson noise
        allows a small overshoot)."""
        _, metrics = des_run
        assert metrics.reward_rate <= 1.2 * assignment.reward_rate

    def test_drop_fraction_shape(self, scenario, des_run):
        _, metrics = des_run
        df = metrics.drop_fraction
        assert df.shape == (scenario.workload.n_task_types,)
        assert np.all((df >= 0) & (df <= 1))

    def test_unplanned_types_fully_dropped(self, scenario, assignment,
                                           des_run):
        """Types with zero planned rate must be entirely dropped."""
        _, metrics = des_run
        planned = assignment.tc.sum(axis=1)
        arrived = metrics.completed + metrics.dropped
        for i in np.nonzero(planned == 0)[0]:
            if arrived[i] > 0:
                assert metrics.dropped[i] == arrived[i]


class TestDeterminismAndEdges:
    def test_empty_trace(self, scenario, assignment):
        m = simulate_trace(scenario.datacenter, scenario.workload,
                           assignment.tc, assignment.pstates, [],
                           duration=5.0)
        assert m.total_reward == 0.0
        assert m.completed.sum() == 0

    def test_deterministic(self, scenario, assignment):
        rng = np.random.default_rng(5)
        trace = generate_trace(scenario.workload, 5.0, rng)
        m1 = simulate_trace(scenario.datacenter, scenario.workload,
                            assignment.tc, assignment.pstates, trace)
        m2 = simulate_trace(scenario.datacenter, scenario.workload,
                            assignment.tc, assignment.pstates, trace)
        assert m1.total_reward == m2.total_reward
        np.testing.assert_array_equal(m1.completed, m2.completed)

    def test_single_task_completes(self, scenario, assignment):
        wl = scenario.workload
        # pick a type the plan serves
        i = int(np.argmax(assignment.tc.sum(axis=1)))
        task = Task(arrival=0.0, task_type=i, uid=0,
                    deadline=float(wl.deadline_slack[i]))
        m = simulate_trace(scenario.datacenter, wl, assignment.tc,
                           assignment.pstates, [task], duration=1.0)
        assert m.completed[i] == 1
        assert m.total_reward == pytest.approx(float(wl.rewards[i]))

    def test_all_off_drops_everything(self, scenario):
        dc, wl = scenario.datacenter, scenario.workload
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        tc = np.zeros((wl.n_task_types, dc.n_cores))
        trace = generate_trace(wl, 2.0, np.random.default_rng(1))
        m = simulate_trace(dc, wl, tc, off, trace, duration=2.0)
        assert m.completed.sum() == 0
        assert m.dropped.sum() == len(trace)


class TestFaultInjection:
    """Core-outage windows: stranding, accounting and identity."""

    def _run(self, scenario, assignment, faults=None, policy="requeue"):
        rng = np.random.default_rng(99)
        trace = generate_trace(scenario.workload, 20.0, rng)
        metrics = simulate_trace(scenario.datacenter, scenario.workload,
                                 assignment.tc, assignment.pstates, trace,
                                 duration=20.0, faults=faults,
                                 stranded_policy=policy)
        return trace, metrics

    def test_no_faults_bit_identical(self, scenario, assignment, des_run):
        """faults=None and faults=[] both reproduce the plain replay."""
        _, plain = des_run
        _, empty = self._run(scenario, assignment, faults=[])
        assert empty.total_reward == plain.total_reward
        np.testing.assert_array_equal(empty.completed, plain.completed)
        np.testing.assert_array_equal(empty.busy_time, plain.busy_time)
        for a, b in zip(empty.response_times, plain.response_times):
            np.testing.assert_array_equal(a, b)
        assert empty.n_fault_events == 0
        assert empty.stranded_requeued is None

    def test_outage_strands_and_accounts(self, scenario, assignment):
        from repro.simulate.events import CoreOutage

        all_cores = tuple(range(scenario.datacenter.n_cores))
        outage = CoreOutage(start_s=10.0, cores=all_cores, end_s=15.0)
        trace, metrics = self._run(scenario, assignment, faults=[outage])
        assert metrics.n_fault_events == 2  # FAULT + RECOVERY
        assert metrics.stranded_requeued is not None
        assert metrics.stranded_requeued.sum() > 0
        # every arrival is still accounted for exactly once
        assert metrics.completed.sum() + metrics.dropped.sum() == len(trace)

    def test_drop_policy_loses_stranded(self, scenario, assignment):
        from repro.simulate.events import CoreOutage

        all_cores = tuple(range(scenario.datacenter.n_cores))
        outage = CoreOutage(start_s=10.0, cores=all_cores, end_s=15.0)
        _, requeue = self._run(scenario, assignment, faults=[outage])
        _, drop = self._run(scenario, assignment, faults=[outage],
                            policy="drop")
        assert drop.stranded_dropped.sum() == requeue.stranded_requeued.sum()
        assert drop.total_reward <= requeue.total_reward

    def test_busy_time_rolled_back(self, scenario, assignment):
        """Stranded work's busy time is removed, so utilization stays
        a valid fraction."""
        from repro.simulate.events import CoreOutage

        all_cores = tuple(range(scenario.datacenter.n_cores))
        outage = CoreOutage(start_s=5.0, cores=all_cores, end_s=18.0)
        _, metrics = self._run(scenario, assignment, faults=[outage],
                               policy="drop")
        u = metrics.utilization
        assert np.all(u >= -1e-9)
        assert np.all(u <= 1.0 + 1e-9)

    def test_dead_cores_take_no_tasks(self, scenario, assignment):
        """With every core dead from t=0, nothing completes."""
        from repro.simulate.events import CoreOutage

        all_cores = tuple(range(scenario.datacenter.n_cores))
        outage = CoreOutage(start_s=0.0, cores=all_cores)
        _, metrics = self._run(scenario, assignment, faults=[outage],
                               policy="drop")
        assert metrics.completed.sum() == 0
        assert metrics.total_reward == 0.0

    def test_invalid_policy_and_cores_rejected(self, scenario, assignment):
        from repro.simulate.events import CoreOutage

        with pytest.raises(ValueError, match="stranded_policy"):
            self._run(scenario, assignment, policy="bogus")
        bad = CoreOutage(start_s=0.0,
                         cores=(scenario.datacenter.n_cores,))
        with pytest.raises(ValueError, match="cores"):
            self._run(scenario, assignment, faults=[bad])
