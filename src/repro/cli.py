"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment layer without writing any code:

* ``tables``   — print Tables I and II.
* ``compare``  — one room, all three techniques, constraint audit.
* ``fig6``     — the headline experiment at a chosen scale (CSV export).
* ``simulate`` — first step + second-step DES replay on one room.
* ``serve``    — live rolling-horizon control service on a streaming
  arrival trace (:mod:`repro.serve`, see ``docs/SERVING.md``).
* ``sweep``    — capacity planning: reward vs power cap (CSV export).
* ``chaos``    — fault-injection sweep: degradation vs fault rate.
* ``control``  — predictive (MPC) vs reactive control under a flash
  crowd and seeded faults (:mod:`repro.control`, see
  ``docs/CONTROL.md``).
* ``profile``  — render the profile tree of a ``--trace-out`` log.
* ``lint``     — AST-based determinism/physics/hygiene analysis
  (:mod:`repro.lint`, see ``docs/LINTING.md``).

``fig6``, ``sweep``, ``simulate`` and ``chaos`` accept
``--trace-out PATH``: the run records spans/metrics
(:mod:`repro.obs`) and writes a JSON-lines event log that
``repro profile`` aggregates into a wall-clock profile tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


# ----------------------------------------------------------------------
# Shared argparse parents.  Several subcommands accept the same flags;
# each family is defined once here (``add_help=False`` parents composed
# via ``add_parser(parents=[...])``) so the help text stays
# byte-identical across subcommands by construction.

def _engine_parent() -> argparse.ArgumentParser:
    """``--jobs`` / ``--cache-dir`` / ``--resume`` (the engine family)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="worker processes (1 = serial; results are "
                        "identical either way)")
    p.add_argument("--cache-dir", type=str, default=".repro-cache",
                   help="directory for per-run result caching "
                        "(default .repro-cache)")
    p.add_argument("--resume", action="store_true",
                   help="replay cached runs instead of recomputing")
    return p


def _trace_out_parent() -> argparse.ArgumentParser:
    """``--trace-out`` (observability event log)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--trace-out", type=str, default=None,
                   metavar="PATH",
                   help="record spans/metrics and write a JSON-lines "
                        "event log here (inspect with 'repro profile')")
    return p


def _kernel_parent() -> argparse.ArgumentParser:
    """``--kernel`` (numeric kernel selection)."""
    from repro import kernels

    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--kernel", choices=kernels.available_kernels(),
                   default=kernels.DEFAULT_KERNEL,
                   help="numeric kernel for the solver hot loops "
                        "(see docs/KERNELS.md; default "
                        f"{kernels.DEFAULT_KERNEL})")
    return p


def _thermal_parent() -> argparse.ArgumentParser:
    """``--thermal-backend`` (heat-flow linear-algebra backend)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--thermal-backend", choices=("auto", "dense", "sparse"),
                   default="auto",
                   help="heat-flow linear-algebra backend (auto picks "
                        "sparse above the room-size threshold; see "
                        "docs/THERMAL.md)")
    return p


def _json_parent() -> argparse.ArgumentParser:
    """``--json`` (machine-readable output)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable JSON summary instead "
                        "of the text report")
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thermal-aware data center P-state assignment "
                    "(IPDPSW 2012 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)
    engine = _engine_parent()
    trace_out = _trace_out_parent()
    kernel = _kernel_parent()
    thermal = _thermal_parent()
    json_flag = _json_parent()

    p_tables = sub.add_parser("tables", help="print Tables I and II")
    p_tables.add_argument("--static", type=float, default=0.3,
                          help="P-state-0 static power fraction "
                               "(default 0.3)")

    p_cmp = sub.add_parser("compare", parents=[kernel, thermal],
                           help="compare techniques on one random room")
    p_cmp.add_argument("--nodes", type=int, default=30)
    p_cmp.add_argument("--seed", type=int, default=1)
    p_cmp.add_argument("--set", dest="paper_set", type=int, default=3,
                       choices=(1, 2, 3), help="paper simulation set")

    p_fig6 = sub.add_parser("fig6",
                            parents=[engine, kernel, thermal, trace_out],
                            help="run the Figure 6 experiment")
    p_fig6.add_argument("--runs", type=int, default=5,
                        help="simulation runs per set (paper: 25)")
    p_fig6.add_argument("--nodes", type=int, default=30,
                        help="compute nodes per room (paper: 150)")
    p_fig6.add_argument("--seed", type=int, default=1000)
    p_fig6.add_argument("--csv", type=str, default=None,
                        help="also write the bar series to this CSV file")

    p_sweep = sub.add_parser(
        "sweep", parents=[engine, kernel, trace_out],
        help="capacity planning: reward vs power cap")
    p_sweep.add_argument("--nodes", type=int, default=25)
    p_sweep.add_argument("--seed", type=int, default=4)
    p_sweep.add_argument("--points", type=int, default=6)
    p_sweep.add_argument("--csv", type=str, default=None,
                         help="also write the curve to this CSV file")

    p_sim = sub.add_parser("simulate", parents=[kernel, trace_out, json_flag],
                           help="first step + DES second step on one room")
    p_sim.add_argument("--nodes", type=int, default=20)
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--horizon", type=float, default=30.0,
                       help="simulated seconds of task arrivals")
    p_sim.add_argument("--controller", choices=("static", "interval", "mpc"),
                       default="static",
                       help="static = one plan for the whole horizon "
                            "(default); interval = epoch replans with the "
                            "transient guard; mpc = receding-horizon "
                            "predictive replans (docs/CONTROL.md)")
    p_sim.add_argument("--epoch-s", type=float, default=60.0,
                       help="replan epoch for interval/mpc controllers "
                            "(default 60)")
    p_sim.add_argument("--forecast", choices=("oracle", "persistence",
                                              "noisy"),
                       default="oracle",
                       help="mpc forecast provider (default oracle)")

    p_serve = sub.add_parser(
        "serve", parents=[kernel, trace_out, json_flag],
        help="live rolling-horizon control service on a streaming trace")
    p_serve.add_argument("--nodes", type=int, default=20)
    p_serve.add_argument("--seed", type=int, default=1)
    p_serve.add_argument("--ticks", type=_positive_int, default=20,
                         help="control ticks to run (default 20)")
    p_serve.add_argument("--tick-s", type=float, default=30.0,
                         help="control-tick length, seconds (default 30)")
    p_serve.add_argument("--trace", choices=("diurnal", "burst", "shift",
                                             "composite"),
                         default="composite",
                         help="arrival-trace shape: diurnal cycle, "
                              "flash-crowd burst, regional demand shift, "
                              "or all three composed (default composite)")
    p_serve.add_argument("--warm", choices=("off", "replay", "seed"),
                         default="replay",
                         help="warm-start policy for the per-tick replans "
                              "(default replay; see docs/SERVING.md)")
    p_serve.add_argument("--controller", choices=("interval", "mpc"),
                         default="interval",
                         help="per-tick replan policy: reactive interval "
                              "(default) or receding-horizon mpc "
                              "(docs/CONTROL.md)")
    p_serve.add_argument("--mpc-horizon", type=_positive_int, default=3,
                         help="mpc lookahead depth in ticks (default 3)")
    p_serve.add_argument("--forecast", choices=("oracle", "persistence",
                                                "noisy"),
                         default="oracle",
                         help="mpc forecast provider over the trace "
                              "profile (default oracle)")

    p_chaos = sub.add_parser(
        "chaos", parents=[engine, kernel, trace_out, json_flag],
        help="fault-injection sweep on one room")
    p_chaos.add_argument("--nodes", type=int, default=20)
    p_chaos.add_argument("--seed", type=int, default=1)
    p_chaos.add_argument("--horizon", type=float, default=30.0,
                         help="simulated seconds of task arrivals")
    p_chaos.add_argument("--factors", type=str, default="0,0.5,1,2",
                         help="comma-separated fault-rate factors "
                              "(0 = healthy control, always included)")
    p_chaos.add_argument("--scenario", type=str, default=None,
                         help="explicit fault-schedule file (JSON, or YAML "
                              "when PyYAML is installed) run instead of the "
                              "factor sweep")
    p_chaos.add_argument("--stranded", choices=("requeue", "drop"),
                         default="requeue",
                         help="what happens to tasks stranded on crashed "
                              "cores (default requeue)")
    p_chaos.add_argument("--controller", choices=("interval", "mpc"),
                         default="interval",
                         help="fault-reaction replan policy (default "
                              "interval; see docs/CONTROL.md)")

    p_ctl = sub.add_parser(
        "control", parents=[engine, kernel, trace_out, json_flag],
        help="predictive vs reactive control under flash crowd + faults")
    p_ctl.add_argument("--nodes", type=int, default=12)
    p_ctl.add_argument("--seed", type=int, default=1)
    p_ctl.add_argument("--horizon", type=float, default=360.0,
                       help="simulated seconds (default 360)")
    p_ctl.add_argument("--epoch-s", type=float, default=60.0,
                       help="decision epoch of both arms (default 60)")
    p_ctl.add_argument("--factors", type=str, default="0,1",
                       help="comma-separated fault-rate factors "
                            "(0 = healthy control, always included)")
    p_ctl.add_argument("--controllers", type=str, default="interval,mpc",
                       help="comma-separated controller arms "
                            "(default interval,mpc)")
    p_ctl.add_argument("--forecast", choices=("oracle", "persistence",
                                              "noisy"),
                       default="oracle",
                       help="mpc forecast provider (default oracle)")
    p_ctl.add_argument("--mpc-horizon", type=_positive_int, default=3,
                       help="mpc lookahead depth in epochs (default 3)")

    p_tour = sub.add_parser(
        "tournament", parents=[engine, kernel, trace_out, json_flag],
        help="race every solver backend on the scenario matrix")
    p_tour.add_argument("--nodes", type=int, default=20)
    p_tour.add_argument("--seed", type=int, default=1000)
    p_tour.add_argument("--sets", type=str, default="1",
                        help="comma-separated paper sets to race "
                             "(default 1)")
    p_tour.add_argument("--backends", type=str,
                        default="three_stage,annealing,evolution",
                        help="comma-separated solver backends (see "
                             "docs/SOLVERS.md)")
    p_tour.add_argument("--max-evals", type=_positive_int, default=800,
                        help="evaluation budget per metaheuristic solve "
                             "(default 800)")
    p_tour.add_argument("--backend-seed", type=int, default=0,
                        help="RNG seed for stochastic backends (default 0)")

    p_lint = sub.add_parser(
        "lint", help="AST-based determinism/physics/hygiene analysis")
    from repro.lint.cli import add_lint_arguments
    add_lint_arguments(p_lint)

    p_prof = sub.add_parser(
        "profile", help="render the profile of a --trace-out event log")
    p_prof.add_argument("log", type=str,
                        help="JSON-lines event log written by --trace-out")
    p_prof.add_argument("--min-total", type=float, default=0.0,
                        help="hide spans whose total time is below this "
                             "many seconds")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the profile tree + metrics as JSON")
    return parser


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.tables import format_table1, format_table2

    print(format_table1(args.static))
    print()
    print(format_table2())
    return 0


def _set_config(paper_set: int, n_nodes: int):
    from repro.experiments.config import paper_sets, scaled_down

    return scaled_down(paper_sets()[paper_set - 1], n_nodes)


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core import (solve_baseline, solve_server_level,
                            three_stage_assignment)
    from repro.experiments.generator import generate_scenario

    sc = generate_scenario(_set_config(args.paper_set, args.nodes),
                           args.seed)
    dc = sc.datacenter.with_thermal_backend(args.thermal_backend)
    print(f"room: {args.nodes} nodes, cap {sc.p_const:.1f} kW "
          f"(set {args.paper_set}, seed {args.seed})")
    ours = three_stage_assignment(dc, sc.workload, sc.p_const,
                                  psi=50.0)
    ours.verify(dc, sc.p_const)
    base, _ = solve_baseline(dc, sc.workload, sc.p_const)
    srv, _ = solve_server_level(dc, sc.workload, sc.p_const)
    print(f"  three-stage (psi=50): {ours.reward_rate:9.1f} reward/s")
    print(f"  P0-or-off baseline  : {base.reward_rate:9.1f} reward/s")
    print(f"  server-level 80%    : {srv.reward_rate:9.1f} reward/s")
    imp = 100 * (ours.reward_rate - base.reward_rate) / base.reward_rate
    print(f"  improvement over baseline: {imp:+.2f}%")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.experiments.config import paper_sets, scaled_down
    from repro.experiments.export import fig6_csv, write_csv
    from repro.experiments.figures import fig6_data, format_fig6
    from repro.experiments.progress import PrintingReporter

    configs = [replace(scaled_down(c, args.nodes),
                       thermal_backend=args.thermal_backend)
               for c in paper_sets()]
    reporter = PrintingReporter()
    results = fig6_data(n_runs=args.runs, base_seed=args.seed,
                        configs=configs, jobs=args.jobs,
                        cache_dir=args.cache_dir, resume=args.resume,
                        reporter=reporter)
    print()
    print(f"engine: {reporter.summary()} "
          f"(jobs={args.jobs}, cache={args.cache_dir})")
    print(format_fig6(results))
    if args.csv:
        write_csv(fig6_csv(results), args.csv)
        print(f"series written to {args.csv}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.config import PAPER_SET_3, scaled_down
    from repro.experiments.export import capacity_csv, write_csv
    from repro.experiments.generator import generate_scenario
    from repro.experiments.sweeps import sweep_power_cap

    sc = generate_scenario(scaled_down(PAPER_SET_3, args.nodes), args.seed)
    lo, hi = sc.bounds.p_min, sc.bounds.p_max
    caps = np.linspace(lo * 1.02, hi, args.points)
    points = sweep_power_cap(
        sc.datacenter, sc.workload, caps, jobs=args.jobs,
        cache_dir=args.cache_dir, resume=args.resume,
        cache_tag=f"sweep-set3-n{args.nodes}-seed{args.seed}")
    print(f"{'cap kW':>8}{'3-stage/s':>11}{'baseline/s':>12}{'edge %':>8}")
    for p in points:
        print(f"{p.p_const:>8.1f}{p.reward_three_stage:>11.1f}"
              f"{p.reward_baseline:>12.1f}{p.improvement_pct:>+8.2f}")
    if args.csv:
        write_csv(capacity_csv(points), args.csv)
        print(f"series written to {args.csv}")
    return 0


def _cmd_simulate_controller(args: argparse.Namespace, sc) -> int:
    """The ``--controller interval|mpc`` branch of ``repro simulate``."""
    import json

    from repro.control import MPCConfig, MPCController
    from repro.core.controller import EpochController
    from repro.workload import ConstantProfile

    profile = ConstantProfile(sc.workload.arrival_rates)
    rng = np.random.default_rng(args.seed + 1)
    if args.controller == "mpc":
        controller = MPCController(
            sc.datacenter, sc.workload, sc.p_const,
            MPCConfig(step_s=args.epoch_s), forecast=args.forecast)
        result = controller.run(profile, args.horizon, rng)
        precools, derates = result.precools, result.derates
    else:
        controller = EpochController(sc.datacenter, sc.workload,
                                     sc.p_const, epoch_s=args.epoch_s)
        result = controller.run(profile, args.horizon, rng)
        precools = 0
        derates = sum(e.derated for e in result.epochs)
    if args.json:
        doc = {
            "controller": args.controller,
            "n_epochs": len(result.epochs),
            "reward_rate": result.reward_rate,
            "total_reward": result.total_reward,
            "precools": precools,
            "derates": derates,
        }
        if args.controller == "mpc":
            doc["violation_minutes"] = result.violation_minutes
        print(json.dumps(doc, sort_keys=True))
        return 0
    print(f"controller          : {args.controller} "
          f"({len(result.epochs)} epochs x {args.epoch_s:.0f}s)")
    print(f"achieved reward rate: {result.reward_rate:9.1f}/s")
    print(f"escalations         : {precools} precools, {derates} derates")
    if args.controller == "mpc":
        print(f"violation minutes   : {result.violation_minutes:.2f}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import json

    from repro.core import three_stage_assignment
    from repro.experiments.config import PAPER_SET_1, scaled_down
    from repro.experiments.generator import generate_scenario
    from repro.simulate import simulate_trace
    from repro.workload import generate_trace

    sc = generate_scenario(scaled_down(PAPER_SET_1, args.nodes), args.seed)
    if args.controller != "static":
        return _cmd_simulate_controller(args, sc)
    plan = three_stage_assignment(sc.datacenter, sc.workload, sc.p_const,
                                  psi=50.0)
    trace = generate_trace(sc.workload, args.horizon,
                           np.random.default_rng(args.seed + 1))
    metrics = simulate_trace(sc.datacenter, sc.workload, plan.tc,
                             plan.pstates, trace, duration=args.horizon)
    if args.json:
        doc = metrics.to_dict()
        doc["planned_reward_rate"] = plan.reward_rate
        doc["n_tasks"] = len(trace)
        print(json.dumps(doc, sort_keys=True))
        return 0
    # a tiny room/horizon can legally plan zero reward; don't divide by it
    achieved_pct = (f" ({100 * metrics.reward_rate / plan.reward_rate:.1f}%)"
                    if plan.reward_rate > 0 else "")
    print(f"planned reward rate : {plan.reward_rate:9.1f}/s")
    print(f"achieved (DES)      : {metrics.reward_rate:9.1f}/s"
          f"{achieved_pct}")
    print(f"tasks               : {metrics.completed.sum()} completed, "
          f"{metrics.dropped.sum()} dropped of {len(trace)}")
    print(f"mean core utilization: {metrics.utilization.mean():.1%}")
    return 0


def _serve_profile(kind: str, base_rates: np.ndarray, tick_s: float,
                   n_ticks: int):
    """Build the arrival profile behind ``repro serve --trace``."""
    from repro.workload import (ConstantProfile, DiurnalProfile,
                                FlashCrowdProfile, RegionalShiftProfile)

    horizon = tick_s * n_ticks
    if kind == "diurnal":
        return DiurnalProfile(base_rates=base_rates, amplitude=0.4,
                              period_s=horizon)
    if kind == "burst":
        return FlashCrowdProfile(
            ConstantProfile(base_rates=base_rates),
            bursts=((horizon / 3.0, horizon / 6.0, 4.0),))
    if kind == "shift":
        return RegionalShiftProfile(ConstantProfile(base_rates=base_rates),
                                    amplitude=0.3, period_s=horizon)
    # composite: diurnal cycle + regional shift + one flash crowd
    diurnal = DiurnalProfile(base_rates=base_rates, amplitude=0.4,
                             period_s=horizon)
    shifted = RegionalShiftProfile(diurnal, amplitude=0.3,
                                   period_s=horizon / 2.0)
    return FlashCrowdProfile(shifted,
                             bursts=((horizon / 3.0, horizon / 6.0, 4.0),))


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.config import PAPER_SET_1, scaled_down
    from repro.experiments.generator import generate_scenario
    from repro.serve import ServeConfig, serve_trace
    from repro.workload import stream_trace_ticks

    sc = generate_scenario(scaled_down(PAPER_SET_1, args.nodes), args.seed)
    profile = _serve_profile(args.trace, sc.workload.arrival_rates,
                             args.tick_s, args.ticks)
    config = ServeConfig(tick_s=args.tick_s, warm=args.warm,
                         controller=args.controller,
                         horizon_ticks=args.mpc_horizon)
    forecast = None
    if args.controller == "mpc":
        from repro.control import make_forecast
        forecast = make_forecast(args.forecast, profile,
                                 seed=args.seed)
    ticks = stream_trace_ticks(sc.workload, profile, args.tick_s,
                               args.ticks,
                               np.random.default_rng(args.seed + 1))
    result = serve_trace(sc.datacenter, sc.workload, sc.p_const, ticks,
                         config, forecast)
    if args.json:
        print(json.dumps(result.to_dict(), sort_keys=True))
        return 0
    print(f"serve: {args.nodes} nodes, cap {sc.p_const:.1f} kW, "
          f"{args.ticks} ticks x {args.tick_s:.0f}s, trace={args.trace}, "
          f"warm={args.warm}, controller={args.controller}")
    print(f"{'tick':>5}{'reward/s':>10}{'warm':>10}{'arrived':>9}"
          f"{'admitted':>9}{'shed':>7}")
    for t in result.ticks:
        print(f"{t.index:>5}{t.reward_rate:>10.1f}{t.warm_level:>10}"
              f"{t.arrived:>9}{t.admitted:>9}{t.shed_tasks:>7}")
    levels = ", ".join(f"{k}={v}" for k, v in
                       sorted(result.warm_levels.items()))
    print(f"total: {result.total_reward:.0f} reward predicted, "
          f"{result.tasks_shed} of {result.tasks_arrived} tasks shed "
          f"over {result.shed_ticks} shed ticks ({levels})")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.chaos import (ChaosConfig, ChaosPoint,
                                         chaos_table, run_chaos_scenario,
                                         sweep_chaos)
    from repro.faults.schedule import load_schedule

    config = ChaosConfig(n_nodes=args.nodes, seed=args.seed,
                         horizon_s=args.horizon, stranded=args.stranded,
                         controller=args.controller)
    if args.scenario is not None:
        schedule = load_schedule(args.scenario)
        result = run_chaos_scenario(config, schedule)
        if args.json:
            print(json.dumps(result.to_dict(), sort_keys=True))
            return 0
        print(f"scenario: {len(schedule)} fault events over "
              f"{args.horizon:.0f}s ({args.nodes} nodes, seed {args.seed})")
        print(chaos_table([ChaosPoint.from_result(float("nan"), result)]))
        return 0
    try:
        factors = [float(f) for f in args.factors.split(",") if f.strip()]
    except ValueError:
        print(f"invalid --factors value: {args.factors!r}", file=sys.stderr)
        return 2
    points = sweep_chaos(config, factors, jobs=args.jobs,
                         cache_dir=args.cache_dir, resume=args.resume)
    if args.json:
        print(json.dumps({"schema": 1,
                          "config": {"n_nodes": args.nodes,
                                     "seed": args.seed,
                                     "horizon_s": args.horizon,
                                     "stranded": args.stranded,
                                     "controller": args.controller},
                          "points": [p.to_dict() for p in points]},
                         sort_keys=True))
        return 0
    print(f"chaos sweep: {args.nodes} nodes, seed {args.seed}, "
          f"{args.horizon:.0f}s horizon, stranded={args.stranded}, "
          f"controller={args.controller}")
    print(chaos_table(points))
    return 0


def _cmd_control(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.control import (ControlConfig, control_table,
                                           sweep_control)

    try:
        factors = [float(f) for f in args.factors.split(",") if f.strip()]
    except ValueError:
        print(f"invalid --factors value: {args.factors!r}", file=sys.stderr)
        return 2
    controllers = tuple(c.strip() for c in args.controllers.split(",")
                        if c.strip())
    config = ControlConfig(n_nodes=args.nodes, seed=args.seed,
                           horizon_s=args.horizon, epoch_s=args.epoch_s,
                           horizon_steps=args.mpc_horizon,
                           forecast=args.forecast)
    try:
        points = sweep_control(config, factors, controllers,
                               jobs=args.jobs, cache_dir=args.cache_dir,
                               resume=args.resume)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"schema": 1,
                          "config": {"n_nodes": args.nodes,
                                     "seed": args.seed,
                                     "horizon_s": args.horizon,
                                     "epoch_s": args.epoch_s,
                                     "horizon_steps": args.mpc_horizon,
                                     "forecast": args.forecast,
                                     "controllers": list(controllers)},
                          "points": [p.to_dict() for p in points]},
                         sort_keys=True))
        return 0
    print(f"control sweep: {args.nodes} nodes, seed {args.seed}, "
          f"{args.horizon:.0f}s horizon, epoch {args.epoch_s:.0f}s, "
          f"forecast={args.forecast}")
    print(control_table(points))
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.tournament import (TournamentConfig,
                                              sweep_tournament,
                                              tournament_table)

    try:
        sets = tuple(int(s) for s in args.sets.split(",") if s.strip())
    except ValueError:
        print(f"invalid --sets value: {args.sets!r}", file=sys.stderr)
        return 2
    backends = tuple(b.strip() for b in args.backends.split(",")
                     if b.strip())
    try:
        config = TournamentConfig(
            n_nodes=args.nodes, seed=args.seed, sets=sets,
            backends=backends, backend_seed=args.backend_seed,
            max_evals=args.max_evals)
        points = sweep_tournament(config, jobs=args.jobs,
                                  cache_dir=args.cache_dir,
                                  resume=args.resume)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"schema": 1,
                          "config": {"n_nodes": args.nodes,
                                     "seed": args.seed,
                                     "sets": list(sets),
                                     "backends": list(backends),
                                     "backend_seed": args.backend_seed,
                                     "max_evals": args.max_evals},
                          "points": [p.to_dict() for p in points]},
                         sort_keys=True))
        return 0
    print(f"solver tournament: {args.nodes} nodes, seed {args.seed}, "
          f"sets {','.join(str(s) for s in sets)}, "
          f"budget {args.max_evals} evals")
    print(tournament_table(points))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint_command

    return run_lint_command(args)


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (profile_from_snapshot, profile_to_dict,
                           read_events_jsonl, render_metrics,
                           render_profile)

    try:
        snapshot = read_events_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"cannot read event log: {exc}", file=sys.stderr)
        return 2
    root = profile_from_snapshot(snapshot)
    if args.json:
        print(json.dumps({"schema": 1,
                          "meta": snapshot["meta"],
                          "profile": profile_to_dict(root),
                          "metrics": snapshot["metrics"]}, sort_keys=True))
        return 0
    print(render_profile(root, min_total_s=args.min_total))
    print()
    print(render_metrics(snapshot["metrics"]))
    return 0


_COMMANDS = {
    "tables": _cmd_tables,
    "compare": _cmd_compare,
    "fig6": _cmd_fig6,
    "simulate": _cmd_simulate,
    "serve": _cmd_serve,
    "sweep": _cmd_sweep,
    "chaos": _cmd_chaos,
    "control": _cmd_control,
    "tournament": _cmd_tournament,
    "lint": _cmd_lint,
    "profile": _cmd_profile,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro import kernels

    args = build_parser().parse_args(argv)
    with kernels.use_kernel(getattr(args, "kernel", None)):
        trace_out = getattr(args, "trace_out", None)
        if trace_out is None:
            return _COMMANDS[args.command](args)
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            code = _COMMANDS[args.command](args)
        finally:
            obs.disable()
            n = obs.write_events_jsonl(trace_out,
                                       meta={"command": args.command})
            print(f"trace: {n} spans -> {trace_out}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
