"""The paper's primary contribution: data-center-level thermal-aware
P-state assignment (three-stage first step + dynamic second step) and
the P0-or-off baseline it is compared against."""

from repro.core.api import (BestPsiOutcome, SolveOptions, SolveOutcome,
                            SolveRequest, SolveResult, SolveState,
                            available_methods, solve)
from repro.core.arr import (AggregateRewardRate, aggregate_reward_rate,
                            select_best_task_types)
from repro.core.assignment import (AssignmentResult, best_psi_assignment,
                                   three_stage_assignment)
from repro.core.baseline import (BaselineSolution, solve_baseline,
                                 solve_baseline_fixed_temps)
from repro.core.consolidation import ConsolidationResult, consolidate
from repro.core.controller import (ControllerResult, EpochController,
                                   EpochRecord)
from repro.core.exact import ExactResult, count_assignments, solve_exact
from repro.core.queueing import (ClassQueue, erlang_c, mm1k_blocking,
                                 predict_completion)
from repro.core.minpower import (MinPowerResult, minimize_power,
                                 solve_minpower_fixed_temps)
from repro.core.reward import reward_power_ratio, reward_rate_function
from repro.core.scheduler import DynamicScheduler
from repro.core.serverlevel import (ServerLevelSolution,
                                    local_governor_pstate,
                                    solve_server_level)
from repro.core.stage1 import (Stage1Solution, build_arr_functions,
                               distribute_node_power, solve_stage1,
                               solve_stage1_fixed_temps)
from repro.core.stage2 import (Stage2Solution, convert_power_to_pstates,
                               solve_stage2)
from repro.core.stage3 import Stage3Solution, solve_stage3
from repro.core.stage3_power import solve_stage3_power_aware

__all__ = [
    "BestPsiOutcome",
    "SolveOptions",
    "SolveOutcome",
    "SolveRequest",
    "SolveResult",
    "SolveState",
    "available_methods",
    "solve",
    "AggregateRewardRate",
    "aggregate_reward_rate",
    "select_best_task_types",
    "AssignmentResult",
    "best_psi_assignment",
    "three_stage_assignment",
    "BaselineSolution",
    "solve_baseline",
    "solve_baseline_fixed_temps",
    "ConsolidationResult",
    "consolidate",
    "ControllerResult",
    "EpochController",
    "EpochRecord",
    "ExactResult",
    "count_assignments",
    "solve_exact",
    "ClassQueue",
    "erlang_c",
    "mm1k_blocking",
    "predict_completion",
    "MinPowerResult",
    "minimize_power",
    "solve_minpower_fixed_temps",
    "reward_power_ratio",
    "reward_rate_function",
    "DynamicScheduler",
    "ServerLevelSolution",
    "local_governor_pstate",
    "solve_server_level",
    "Stage1Solution",
    "build_arr_functions",
    "distribute_node_power",
    "solve_stage1",
    "solve_stage1_fixed_temps",
    "Stage2Solution",
    "convert_power_to_pstates",
    "solve_stage2",
    "Stage3Solution",
    "solve_stage3",
    "solve_stage3_power_aware",
]
