"""Workload substrate: ECS matrices, task types, rewards/deadlines/arrivals,
and Poisson task traces (Sections III.B-D, VI.C-D)."""

from repro.workload.ecs import (extend_ecs, generate_ecs, generate_p0_ecs,
                                task_type_means)
from repro.workload.profiles import (ArrivalProfile, ConstantProfile,
                                     DiurnalProfile, StepProfile,
                                     generate_nonstationary_trace)
from repro.workload.tasktypes import (Workload, arrival_rates, deadline_slacks,
                                      generate_workload, rewards_from_ecs)
from repro.workload.trace import (FlashCrowdProfile, RegionalShiftProfile,
                                  Task, TickDemand, generate_trace,
                                  stream_trace_ticks)

__all__ = [
    "extend_ecs",
    "generate_ecs",
    "generate_p0_ecs",
    "task_type_means",
    "ArrivalProfile",
    "ConstantProfile",
    "DiurnalProfile",
    "StepProfile",
    "generate_nonstationary_trace",
    "Workload",
    "arrival_rates",
    "deadline_slacks",
    "generate_workload",
    "rewards_from_ecs",
    "FlashCrowdProfile",
    "RegionalShiftProfile",
    "Task",
    "TickDemand",
    "generate_trace",
    "stream_trace_ticks",
]
