"""Rule implementations; importing this package registers every rule.

Codes are grouped by category and never reused:

* ``RL000``           — reserved: file could not be parsed
* ``RL001``-``RL009`` — determinism (per-file AST)
* ``RL010``-``RL019`` — physics / units (per-file AST)
* ``RL020``-``RL029`` — hygiene (per-file AST)
* ``RL030``-``RL039`` — unit-dimension dataflow
* ``RL040``-``RL049`` — determinism taint dataflow
* ``RL050``-``RL059`` — cache-key completeness
"""

from repro.lint.rules import (cachekey, determinism, hygiene, physics,
                              taint, unitflow)

__all__ = ["cachekey", "determinism", "hygiene", "physics", "taint",
           "unitflow"]
