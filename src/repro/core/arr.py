"""Aggregate reward-rate functions ``ARR_j`` (Section V.B.2, Figure 5).

Stage 1 needs one reward-vs-power curve per *core type*, not per
(task type, core type) pair, so the paper aggregates: rank task types by
their average reward-rate : power ratio on that core type, keep the best
``ψ%``, and average their ``RR_{i,j}`` functions.  The result is not
guaranteed concave — a "bad" P-state whose reward:power ratio is worse
than its next *lower-power* P-state dents the curve (Figure 4) — and a
non-concave objective would force binary variables into Stage 1.  The
paper's fix: ignore bad P-states, i.e. take the upper concave majorant
(Figure 5); the relaxed optimum is unchanged because an optimal solution
splits power across cores rather than parking one in a bad state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.coretypes import NodeTypeSpec
from repro.optimize.piecewise import PiecewiseLinear
from repro.core.reward import reward_power_ratio, reward_rate_function
from repro.workload.tasktypes import Workload

__all__ = ["select_best_task_types", "AggregateRewardRate",
           "aggregate_reward_rate"]


def select_best_task_types(workload: Workload, node_type: NodeTypeSpec,
                           node_type_index: int, psi: float) -> np.ndarray:
    """Indices of the "best ψ%" task types for a core type.

    ``psi`` is a percentage in (0, 100].  The count is
    ``max(1, round(psi% * T))``; ties in the ranking ratio are broken
    arbitrarily (by index, matching "we break the ties arbitrarily").
    """
    if not 0.0 < psi <= 100.0:
        raise ValueError(f"psi must be in (0, 100], got {psi}")
    t = workload.n_task_types
    count = max(1, int(round(psi / 100.0 * t)))
    ratios = np.asarray([
        reward_power_ratio(workload, i, node_type, node_type_index)
        for i in range(t)
    ])
    # stable argsort descending: negate, ties keep index order
    order = np.argsort(-ratios, kind="stable")
    return np.sort(order[:count])


@dataclass(frozen=True)
class AggregateRewardRate:
    """``ARR_j`` for one core type, raw and concave forms.

    Attributes
    ----------
    node_type_index:
        Which core type this function describes.
    selected_task_types:
        The "best ψ%" indices that were averaged.
    raw:
        Plain average of the selected ``RR_{i,j}`` (may be non-concave).
    concave:
        Upper concave majorant of ``raw`` — the function Stage 1
        optimizes ("bad" P-states ignored).
    """

    node_type_index: int
    selected_task_types: np.ndarray
    raw: PiecewiseLinear
    concave: PiecewiseLinear

    @property
    def max_power(self) -> float:
        """P-state-0 power — the relaxation's per-core power ceiling."""
        return float(self.concave.x[-1])

    def segments_decreasing_slope(self) -> tuple[np.ndarray, np.ndarray]:
        """``(lengths, slopes)`` of the concave curve, steepest first.

        Because the curve is concave and anchored at ``(0, 0)``, its
        segments are already ordered by non-increasing slope left to
        right; Stage 1's LP and the greedy power split rely on that.
        """
        lengths = np.diff(self.concave.x)
        slopes = np.diff(self.concave.y) / lengths
        return lengths, slopes


def aggregate_reward_rate(workload: Workload, node_type: NodeTypeSpec,
                          node_type_index: int, psi: float
                          ) -> AggregateRewardRate:
    """Build ``ARR_j`` for one core type at aggregation level ``psi``."""
    selected = select_best_task_types(workload, node_type, node_type_index,
                                      psi)
    functions = [
        reward_rate_function(workload, int(i), node_type, node_type_index)
        for i in selected
    ]
    raw = PiecewiseLinear.average(functions)
    concave = raw.concave_majorant()
    return AggregateRewardRate(
        node_type_index=node_type_index,
        selected_task_types=selected,
        raw=raw,
        concave=concave,
    )
