"""Per-task-type reward-rate functions ``RR_{i,j}`` (Section V.B.2).

Stage 1 relaxes integer P-states by letting a core consume any power
between 0 (off) and its P-state-0 power; the reward rate it can then
earn from task type *i* is the piecewise-linear interpolation through
the P-state operating points::

    (pi[j, k],  r_i * ECS(i, j, k))      for every P-state k

— the paper's intuition being that a core can time-multiplex two
adjacent P-states to average any intermediate power (Figure 3).

Deadline awareness (Figure 4): a P-state whose execution time exceeds
the type's deadline slack ``m_i`` can never collect reward, so its point
drops to zero reward rate, which is what makes some ARR functions
non-concave and motivates the "bad P-state" majorant of
:mod:`repro.core.arr`.
"""

from __future__ import annotations

import numpy as np

from repro.datacenter.coretypes import NodeTypeSpec
from repro.optimize.piecewise import PiecewiseLinear
from repro.workload.tasktypes import Workload

__all__ = ["reward_rate_function", "reward_power_ratio"]


def reward_rate_function(workload: Workload, task_type: int,
                         node_type: NodeTypeSpec, node_type_index: int,
                         *, apply_deadline: bool = True) -> PiecewiseLinear:
    """Build ``RR_{i,j}`` for one (task type, node type) pair.

    Parameters
    ----------
    workload:
        Supplies ECS values, rewards and deadline slacks.
    task_type / node_type / node_type_index:
        The pair; ``node_type_index`` selects the ECS column for
        ``node_type`` (callers hold both because the spec alone cannot
        be looked up in the tensor).
    apply_deadline:
        When True (the paper's definition), P-states that cannot meet
        ``m_i`` contribute zero reward rate.  False gives the raw
        Figure 3 variant, useful for analysis.

    Returns
    -------
    PiecewiseLinear
        Defined on ``[0, pi_{j,0}]``; evaluating at a P-state's power
        returns exactly that P-state's reward rate.
    """
    ecs = workload.ecs[task_type, node_type_index, :]
    powers = np.asarray(node_type.pstate_power_kw)
    if ecs.shape != powers.shape:
        raise ValueError(
            f"ECS has {ecs.shape[0]} P-states but node type "
            f"{node_type.name} has {powers.shape[0]}")
    reward = float(workload.rewards[task_type])
    rates = reward * ecs.copy()
    if apply_deadline:
        slack = float(workload.deadline_slack[task_type])
        # Constraint 2 of Eq. 7: zero reward when 1/ECS > m_i.  The off
        # state (ECS 0) is zero either way.
        misses = np.empty_like(ecs, dtype=bool)
        misses[ecs > 0] = (1.0 / ecs[ecs > 0]) > slack
        misses[ecs <= 0] = True
        rates[misses] = 0.0
    # points ordered by increasing power: off state (0 kW) first
    return PiecewiseLinear.through_points(zip(powers, rates))


def reward_power_ratio(workload: Workload, task_type: int,
                       node_type: NodeTypeSpec,
                       node_type_index: int) -> float:
    """Average reward-rate : power ratio over active P-states.

    Section V.B.2 ranks task types for the "best ψ%" selection by the
    average over all P-states *except the turned-off one* of
    ``RR_{i,j}(pi[j,k]) / pi[j,k]``.
    """
    rr = reward_rate_function(workload, task_type, node_type,
                              node_type_index)
    powers = np.asarray(node_type.pstate_power_kw[:-1])  # drop off state
    if np.any(powers <= 0):
        raise ValueError(
            f"{node_type.name}: active P-states must consume positive power")
    return float(np.mean(rr(powers) / powers))
