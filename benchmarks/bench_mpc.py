"""MPC vs interval replanning — reward retained under a faulted burst.

Runs the control-comparison experiment of :mod:`repro.experiments.control`
on a scaled Figure-6 Set-1 room: a flash-crowd arrival burst rides on top
of a seeded fault timeline, and the same trace is replayed under the
classic reactive interval controller and the receding-horizon MPC planner
(:mod:`repro.control.mpc`).  The MPC edge is *precool-as-an-alternative-
to-derate*: where the interval loop can only cut the power cap (losing
reward) or shed the interval outright once a transition overshoots, MPC
re-solves at full cap against margin-tightened redlines so the room
enters the transition colder and compute is kept.

Writes ``BENCH_mpc.json`` to the repo root.  CI gates on the faulted
arm: MPC must strictly improve reward retained over the interval
controller while accumulating no more redline-violation minutes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.control import (CONTROLLERS, ControlConfig,
                                       run_control_point, sweep_control)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_mpc.json"

# The committed headline room: 10 nodes, seed 1, a 4-epoch horizon with
# a mid-trace flash crowd and the demo fault timeline at factor 1.  At
# this size the interval loop is forced to shed a whole interval while
# MPC precools through it — the cleanest demonstration of the edge.
CONFIG = ControlConfig(n_nodes=10, seed=1, horizon_s=240.0, epoch_s=60.0)
FACTORS = [0.0, 1.0]


def bench_mpc(benchmark, capsys, scale):
    points = sweep_control(CONFIG, FACTORS, jobs=1)
    by_arm = {(p.controller, p.factor): p for p in points}
    interval = by_arm[("interval", 1.0)]
    mpc = by_arm[("mpc", 1.0)]

    doc = {
        "schema": 1,
        "config": {
            "n_nodes": CONFIG.n_nodes,
            "seed": CONFIG.seed,
            "horizon_s": CONFIG.horizon_s,
            "epoch_s": CONFIG.epoch_s,
            "horizon_steps": CONFIG.horizon_steps,
            "forecast": CONFIG.forecast,
            "factors": FACTORS,
        },
        "points": [p.to_dict() for p in points],
        "headline": {
            "interval_retained": interval.reward_retained,
            "mpc_retained": mpc.reward_retained,
            "interval_violation_minutes": interval.violation_minutes,
            "mpc_violation_minutes": mpc.violation_minutes,
            "interval_sheds": interval.sheds,
            "mpc_sheds": mpc.sheds,
            "mpc_precools": mpc.precools,
        },
    }
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # keep pytest-benchmark's machinery engaged (one cheap round)
    small = ControlConfig(n_nodes=6, seed=1, horizon_s=60.0, epoch_s=30.0)
    benchmark.pedantic(
        lambda: run_control_point(small, "interval", 0.0),
        rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"control room: {CONFIG.n_nodes} nodes, "
              f"{CONFIG.horizon_s:.0f} s horizon, "
              f"{CONFIG.epoch_s:.0f} s epochs, factors {FACTORS}")
        for ctrl in CONTROLLERS:
            for factor in FACTORS:
                p = by_arm[(ctrl, factor)]
                print(f"  {ctrl:>8} f={factor:.1f}: "
                      f"reward {p.reward_rate:7.1f}/s "
                      f"retained {100 * p.reward_retained:6.1f}% "
                      f"viol {p.violation_minutes:5.2f} min "
                      f"precool {p.precools} derate {p.derates} "
                      f"shed {p.sheds}")
        print(f"written to {OUT_PATH.name}")

    assert mpc.reward_retained > interval.reward_retained, \
        "MPC no longer beats the interval controller on reward retained"
    assert mpc.violation_minutes <= interval.violation_minutes, \
        "MPC accumulated more redline-violation minutes than interval"
