"""Future-work extension — power minimization under a reward floor.

Section VIII proposes the inverted problem: minimize total power subject
to a reward-rate constraint.  This benchmark sweeps the reward target as
a fraction of the power-capped optimum and prints the resulting
power/reward frontier (which must be monotone: more reward, more power).
"""

import numpy as np

from repro.core import minimize_power, three_stage_assignment

FRACTIONS = (0.5, 0.7, 0.85, 0.95)


def bench_ablation_minpower(benchmark, capsys, bench_scenario):
    sc = bench_scenario
    primal = three_stage_assignment(sc.datacenter, sc.workload, sc.p_const,
                                    psi=50.0)

    def sweep():
        return {f: minimize_power(sc.datacenter, sc.workload,
                                  f * primal.reward_rate, psi=50.0)
                for f in FRACTIONS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    powers = [results[f].total_power_kw for f in FRACTIONS]
    assert all(np.diff(powers) >= -1e-6), "frontier must be monotone"
    assert powers[-1] <= sc.p_const + 1e-6

    with capsys.disabled():
        print()
        print("power-minimization frontier (Section VIII extension)")
        print(f"primal: cap {sc.p_const:.1f} kW -> reward "
              f"{primal.reward_rate:.1f}/s")
        print(f"{'target frac':>12}{'reward floor':>14}{'power kW':>10}"
              f"{'saved vs cap':>14}")
        for f in FRACTIONS:
            r = results[f]
            saved = 100 * (1 - r.total_power_kw / sc.p_const)
            print(f"{f:>12.2f}{f * primal.reward_rate:>14.1f}"
                  f"{r.total_power_kw:>10.1f}{saved:>13.1f}%")
