"""Unit-dimension flow analysis (RL030, RL031).

The paper's algebra mixes five physical quantities — temperature (degC),
power (kW), air flow (m^3/s), frequency (MHz) and time (s) — and the
codebase encodes the dimension in identifier suffixes (``t_in_c``,
``node_kw``, ``flow_m3s``) and in :mod:`repro.units` symbols.  This
module runs the :class:`~repro.lint.dataflow.FunctionAnalysis`
interpreter with *dimension* as the abstract value and flags:

* **RL030** — ``+``/``-`` or a comparison whose operands carry
  different known dimensions (``t_out_c - node_kw`` is always a bug);
* **RL031** — an ``int()`` cast applied to a value with a known
  dimension (quantization that silently drops the unit).

Both err toward silence: an operand with *unknown* dimension never
fires.  Dimensions propagate interprocedurally through return-value
summaries computed callees-first, so ``limit_c - cooling_kw(node)``
is caught even though the right side is a call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from repro.lint.base import LintConfig, ProjectRule, register
from repro.lint.callgraph import build_callgraph
from repro.lint.dataflow import FunctionAnalysis
from repro.lint.project import FunctionInfo, Project

__all__ = ["Dim", "UnitDimensionFlow", "DimensionDroppingCast",
           "dimension_of_name"]


@dataclass(frozen=True)
class Dim:
    """A physical dimension plus where the analysis learned it."""

    dim: str    # display name, e.g. "temperature [degC]"
    why: str    # provenance, e.g. "name suffix '_c'"


_TEMPERATURE = "temperature [degC]"
_POWER = "power [kW]"
_FLOW = "air flow [m^3/s]"
_FREQUENCY = "frequency [MHz]"
_TIME = "time [s]"
_VOLTAGE = "voltage [V]"

#: Identifier suffix -> dimension.  Longest suffixes first so
#: ``flow_m3s`` never reads as time.  The table mirrors the conventions
#: documented in :mod:`repro.units`.
_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_m3s", _FLOW),
    ("_mhz", _FREQUENCY),
    ("_kw", _POWER),
    ("_c", _TEMPERATURE),
    ("_s", _TIME),
    ("_v", _VOLTAGE),
)

#: :mod:`repro.units` symbols whose dimension the suffix rule cannot
#: recover (the suffixed constants — ``NODE_REDLINE_C`` et al. — are
#: already covered by the suffix table after lowercasing).
_UNIT_SYMBOLS: dict[str, str] = {
    "repro.units.AIR_DENSITY": "air density [kg/m^3]",
    "repro.units.AIR_SPECIFIC_HEAT": "specific heat [kJ/(kg.K)]",
}

#: Dimension of selected :mod:`repro.units` call results.
_UNIT_CALLS: dict[str, str] = {
    "repro.units.delta_t_for_power": _TEMPERATURE,
    "repro.units.heat_capacity_rate": "heat capacity rate [kW/K]",
}

#: Builtins whose result keeps the argument's dimension.
_PRESERVING = frozenset({"abs", "min", "max", "sum", "sorted", "float",
                         "round"})

_OP_SYMBOL = {"Add": "+", "Sub": "-"}


def dimension_of_name(name: str) -> Dim | None:
    """Dimension implied by an identifier's suffix, if any."""
    low = name.lower()
    for suffix, dim in _SUFFIXES:
        if low.endswith(suffix):
            return Dim(dim, f"name suffix '{suffix}'")
    return None


class _UnitAnalysis(FunctionAnalysis[Dim]):
    """One function's pass of the dimension interpreter."""

    def __init__(self, project: Project, func: FunctionInfo,
                 summaries: dict[str, Dim],
                 on_mismatch: Callable[..., None] | None,
                 on_cast: Callable[..., None] | None) -> None:
        super().__init__(project, func)
        self.summaries = summaries
        self.on_mismatch = on_mismatch
        self.on_cast = on_cast

    # -- domain --------------------------------------------------------
    def join(self, a: Dim, b: Dim) -> Dim | None:
        return a if a.dim == b.dim else None

    def param_value(self, name: str, annotation: str | None) -> Dim | None:
        return dimension_of_name(name)

    def free_name(self, node: ast.Name) -> Dim | None:
        fqn = self.project.resolve(self.module, node)
        if fqn in _UNIT_SYMBOLS:
            return Dim(_UNIT_SYMBOLS[fqn], fqn)
        return dimension_of_name(node.id)

    def attribute_value(self, node: ast.Attribute,
                        base: Dim | None) -> Dim | None:
        fqn = self.project.resolve(self.module, node)
        if fqn in _UNIT_SYMBOLS:
            return Dim(_UNIT_SYMBOLS[fqn], fqn)
        # an attribute has its *own* dimension; never inherit the base's
        return dimension_of_name(node.attr)

    def call_result(self, node: ast.Call, fqn: str | None,
                    args: list[Dim | None],
                    kwargs: dict[str, Dim | None],
                    receiver: Dim | None = None) -> Dim | None:
        if fqn in _UNIT_CALLS:
            return Dim(_UNIT_CALLS[fqn], f"return of {fqn}()")
        if fqn is not None and fqn in self.summaries:
            summary = self.summaries[fqn]
            return Dim(summary.dim, f"return of {fqn}()")
        if fqn == "int":
            if (self.on_cast is not None and len(args) == 1
                    and args[0] is not None):
                self.on_cast(self, node, args[0])
            return None
        if fqn in _PRESERVING:
            out: Dim | None = None
            for value in args:
                out = self._join_opt(out, value)
            return out
        return None

    def binop_value(self, node: ast.BinOp, left: Dim | None,
                    right: Dim | None) -> Dim | None:
        op = type(node.op).__name__
        if op not in _OP_SYMBOL:
            return None             # *, / build derived dimensions
        if left is not None and right is not None:
            if left.dim != right.dim and self.on_mismatch is not None:
                self.on_mismatch(self, node, _OP_SYMBOL[op], left, right)
            return left if left.dim == right.dim else None
        # adding a dimensionless constant keeps the known dimension
        return left if left is not None else right

    def compare_values(self, node: ast.Compare,
                       operands: list[Dim | None]) -> None:
        if self.on_mismatch is None:
            return
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            if left is None or right is None or left.dim == right.dim:
                continue
            symbol = {"Lt": "<", "LtE": "<=", "Gt": ">", "GtE": ">=",
                      "Eq": "==", "NotEq": "!="}.get(
                          type(op).__name__, type(op).__name__)
            self.on_mismatch(self, node, symbol, left, right)


def run_unit_analysis(project: Project,
                      on_mismatch: Callable[..., None] | None = None,
                      on_cast: Callable[..., None] | None = None) -> None:
    """Interpret every project function callees-first with the given
    observers; return-value dimensions feed forward as summaries."""
    graph = build_callgraph(project)
    summaries: dict[str, Dim] = {}
    for func in graph.bottom_up(project):
        analysis = _UnitAnalysis(project, func, summaries,
                                 on_mismatch, on_cast)
        analysis.analyze()
        summary = (dimension_of_name(func.node.name)
                   or analysis.joined_returns())
        if summary is not None:
            summaries[func.qualname] = summary


class _UnitRule(ProjectRule):
    """Shared dedup plumbing for the two unit rules."""

    def __init__(self, project: Project, config: LintConfig) -> None:
        super().__init__(project, config)
        self._seen: set[tuple[str, int, int, str]] = set()

    def emit(self, analysis: _UnitAnalysis, node: ast.AST, message: str,
             trace: tuple[str, ...]) -> None:
        # loop bodies interpret twice; report each site once
        key = (analysis.module.rel_path, getattr(node, "lineno", 1),
               getattr(node, "col_offset", 0), message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.report(analysis.module, node, message, trace=trace)


@register
class UnitDimensionFlow(_UnitRule):
    code = "RL030"
    name = "unit-dimension-flow"
    category = "physics"
    description = ("+/-/comparison mixes operands of different physical "
                   "dimensions (inferred from name suffixes, repro.units "
                   "symbols and call summaries)")

    def check(self) -> None:
        def on_mismatch(analysis: _UnitAnalysis, node: ast.AST,
                        op: str, left: Dim, right: Dim) -> None:
            message = (f"cross-dimension '{op}': left operand is "
                       f"{left.dim} but right operand is {right.dim}; "
                       f"convert explicitly via repro.units before mixing")
            trace = (
                f"{analysis.location(node)}: left operand carries "
                f"{left.dim} ({left.why})",
                f"{analysis.location(node)}: right operand carries "
                f"{right.dim} ({right.why})",
            )
            self.emit(analysis, node, message, trace)

        run_unit_analysis(self.project, on_mismatch=on_mismatch)


@register
class DimensionDroppingCast(_UnitRule):
    code = "RL031"
    name = "dimension-dropping-cast"
    category = "physics"
    description = ("int() cast applied to a value carrying a physical "
                   "dimension silently drops the unit")

    def check(self) -> None:
        def on_cast(analysis: _UnitAnalysis, node: ast.AST,
                    value: Dim) -> None:
            message = (f"int() cast drops the physical dimension of its "
                       f"argument ({value.dim}); quantize explicitly or "
                       f"keep the float")
            trace = (f"{analysis.location(node)}: argument carries "
                     f"{value.dim} ({value.why})",)
            self.emit(analysis, node, message, trace)

        run_unit_analysis(self.project, on_cast=on_cast)
