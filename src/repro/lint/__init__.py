"""repro.lint — AST-based determinism & physics-invariant analysis.

A dependency-free static-analysis pass purpose-built for this
codebase's reproducibility contract: the three-stage solver, chaos
sweeps and experiment cache promise bit-identical results across
``--jobs``, ``PYTHONHASHSEED`` and resume/replay.  The linter catches
the bug classes that silently break that promise — hash-ordered set
iteration reaching serialized output, unseeded RNG draws, wall-clock
reads in solver paths — plus the physics/units and hygiene footguns
documented in ``docs/LINTING.md``.

Usage::

    python -m repro lint src/                 # via the main CLI
    python -m repro.lint src/ --format json   # standalone

Rules come in two tiers sharing one registry of stable ``RL0xx`` codes:
per-file :class:`~repro.lint.base.RuleVisitor` subclasses and
whole-program :class:`~repro.lint.base.ProjectRule` dataflow analyses
(unit-dimension flow, determinism taint tracking, cache-key
completeness) driven by the interpreter in :mod:`repro.lint.dataflow`.
Findings can be suppressed per logical line
(``# repro-lint: disable=RL001``) or grandfathered in a committed
baseline file (``lint-baseline.json``) with a written reason.
"""

from repro.lint.base import (CacheContract, FileContext, LintConfig,
                             ProjectRule, RuleVisitor, all_rules,
                             get_rule, load_span_taxonomy, register,
                             rule_catalog)
from repro.lint.baseline import (Baseline, load_baseline,
                                 normalize_context, write_baseline)
from repro.lint.engine import iter_python_files, lint_paths, select_rules
from repro.lint.findings import Finding, LintReport
from repro.lint.output import render_github, render_json, render_text
from repro.lint.project import Project, build_project
from repro.lint.suppress import Suppressions, parse_suppressions

__all__ = [
    "Baseline",
    "CacheContract",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "Project",
    "ProjectRule",
    "RuleVisitor",
    "Suppressions",
    "all_rules",
    "build_project",
    "normalize_context",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "load_baseline",
    "load_span_taxonomy",
    "parse_suppressions",
    "register",
    "render_github",
    "render_json",
    "render_text",
    "rule_catalog",
    "select_rules",
    "write_baseline",
]
