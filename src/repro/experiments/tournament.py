"""Solver tournament: every registered backend on the scenario matrix.

The tournament answers the paper's implicit question — *how close to
optimal is the three-stage decomposition?* — by racing every solver
backend (:mod:`repro.solvers`) on the same generated rooms and
reporting, per ``(simulation set, backend)``:

* **reward rate** — the Stage 3 / backend objective (Figure 6 metric);
* **optimality gap** — percent below the three-stage reward on the same
  room (negative = the backend beat the decomposition);
* **redline-violation minutes** — thermal transient from the idle room
  into the backend's operating point (all feasible backends settle
  clean; the column catches one that only *ends* feasible);
* **evaluation count** — budget actually consumed (0 for the
  closed-form built-ins).

Every point is a pure function of ``(TournamentConfig, set, backend)``
— seeded backends are bit-deterministic and **no wall-clock fields are
recorded** — so tournament JSON is byte-identical across ``--jobs``
values (CI diffs it) and points ride the PR-1 engine's generic cache
(:func:`~repro.experiments.engine.load_point` /
:func:`~repro.experiments.engine.store_point`) for ``--resume``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.api import SolveOptions, SolveRequest, solve
from repro.experiments.config import paper_sets, scaled_down
from repro.experiments.engine import load_point, parallel_map, store_point
from repro.experiments.generator import Scenario, generate_scenario
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.thermal.transient import simulate_transient

__all__ = ["TournamentConfig", "TournamentPoint", "run_tournament_point",
           "sweep_tournament", "tournament_table"]


@dataclass(frozen=True)
class TournamentConfig:
    """Everything that determines a tournament (except the point index).

    Attributes
    ----------
    n_nodes / seed:
        Room recipe per set: ``generate_scenario(scaled_down(set,
        n_nodes), seed)`` — the same shape ``repro fig6`` shrinks to.
    sets:
        Paper simulation sets raced (1-based, as in Figure 6).
    backends:
        Registered solver backends to race.
    backend_seed / max_evals:
        RNG seed and evaluation budget handed to every stochastic
        backend (budgets are evaluations, never wall-clock).
    tau_s:
        Node thermal time constant for the idle-to-plan transient.
    """

    n_nodes: int = 20
    seed: int = 1000
    sets: tuple[int, ...] = (1,)
    backends: tuple[str, ...] = ("three_stage", "annealing", "evolution")
    backend_seed: int = 0
    max_evals: int = 800
    tau_s: float = 120.0

    def __post_init__(self) -> None:
        if not self.sets or not self.backends:
            raise ValueError("need at least one set and one backend")
        if any(s not in (1, 2, 3) for s in self.sets):
            raise ValueError("sets are 1-based paper set indices (1-3)")

    def cache_tag(self) -> str:
        return f"tournament-n{self.n_nodes}-seed{self.seed}"

    def cache_extra(self, set_index: int, backend: str) -> dict:
        return {
            "set": set_index,
            "backend": backend,
            "backend_seed": self.backend_seed,
            "max_evals": self.max_evals,
            "tau_s": self.tau_s,
        }


@dataclass
class TournamentPoint:
    """One ``(set, backend)`` race result.

    ``gap_pct`` is filled in by :func:`sweep_tournament` relative to the
    same set's three-stage point (``NaN`` when three-stage is absent or
    earned nothing).  Deliberately contains **no wall-clock fields** so
    serialized points are byte-identical across runs and ``--jobs``.
    """

    set_index: int
    backend: str
    reward_rate: float
    evaluations: int
    violation_minutes: float
    p_const: float
    gap_pct: float = float("nan")

    def to_dict(self) -> dict:
        return {
            "set": self.set_index,
            "backend": self.backend,
            "reward_rate": self.reward_rate,
            "evaluations": self.evaluations,
            "violation_minutes": self.violation_minutes,
            "p_const": self.p_const,
            "gap_pct": self.gap_pct,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TournamentPoint":
        return cls(set_index=int(doc["set"]),
                   backend=str(doc["backend"]),
                   reward_rate=float(doc["reward_rate"]),
                   evaluations=int(doc["evaluations"]),
                   violation_minutes=float(doc["violation_minutes"]),
                   p_const=float(doc["p_const"]),
                   gap_pct=float(doc.get("gap_pct", float("nan"))))


def _tournament_scenario(config: TournamentConfig,
                         set_index: int) -> Scenario:
    base = paper_sets()[set_index - 1]
    return generate_scenario(scaled_down(base, config.n_nodes),
                             config.seed)


def run_tournament_point(config: TournamentConfig,
                         item: tuple[int, str]) -> TournamentPoint:
    """Race one backend on one set's room; pure in ``(config, item)``."""
    set_index, backend = item
    scenario = _tournament_scenario(config, set_index)
    dc = scenario.datacenter
    with obs_span("tournament", set=set_index, backend=backend,
                  n_nodes=dc.n_nodes):
        request = SolveRequest(
            dc, scenario.workload, scenario.p_const,
            options=SolveOptions(backend=backend,
                                 seed=config.backend_seed,
                                 max_evals=config.max_evals))
        result = solve(request)
        result.verify(dc, scenario.p_const)
        # thermal exposure of the idle-room -> plan transition
        model = dc.require_thermal()
        idle_power = dc.node_power_kw(dc.all_off_pstates())
        t_mid = np.full(dc.n_crac, float(np.mean(
            [c.outlet_range_c for c in dc.cracs])))
        t_idle = model.steady_state(t_mid, idle_power).t_out
        transient = simulate_transient(
            model, result.t_crac_out, dc.node_power_kw(result.pstates),
            t_idle, duration_s=10.0 * config.tau_s, tau_s=config.tau_s)
        violation = transient.violation_minutes(dc.redline_c)
    obs_metrics.counter("tournament.points").inc()
    return TournamentPoint(
        set_index=set_index,
        backend=backend,
        reward_rate=float(result.reward_rate),
        evaluations=int(getattr(result, "evaluations", 0)),
        violation_minutes=float(violation),
        p_const=float(scenario.p_const))


def sweep_tournament(config: TournamentConfig, *, jobs: int = 1,
                     cache_dir: str | None = None,
                     resume: bool = False) -> list[TournamentPoint]:
    """Race every configured backend on every configured set.

    Points fan out over :func:`~repro.experiments.engine.parallel_map`
    (bit-identical across ``--jobs``) and land in the generic point
    cache for ``--resume``.  Returned points are ordered by (set,
    configured backend order) with ``gap_pct`` filled in relative to
    each set's three-stage point.
    """
    items = [(s, b) for s in config.sets for b in config.backends]
    points: dict[tuple[int, str], TournamentPoint] = {}
    pending: list[tuple[int, str]] = []
    for item in items:
        payload = None
        if cache_dir is not None and resume:
            payload = load_point(cache_dir, config.cache_tag(),
                                 config.cache_extra(*item))
        if payload is not None:
            points[item] = TournamentPoint.from_dict(payload["point"])
        else:
            pending.append(item)
    computed = parallel_map(partial(run_tournament_point, config), pending,
                            jobs=jobs)
    for item, point in zip(pending, computed):
        points[item] = point
        if cache_dir is not None:
            store_point(cache_dir, config.cache_tag(),
                        config.cache_extra(*item),
                        {"point": point.to_dict()})
    for s in config.sets:
        anchor = points.get((s, "three_stage"))
        reference = anchor.reward_rate if anchor is not None else 0.0
        for b in config.backends:
            point = points[(s, b)]
            point.gap_pct = (100.0 * (1.0 - point.reward_rate / reference)
                             if reference > 0 else float("nan"))
    return [points[item] for item in items]


def tournament_table(points: list[TournamentPoint]) -> str:
    """Fixed-width text table of a tournament (CLI output)."""
    lines = [f"{'set':>4}{'backend':>13}{'reward/s':>10}{'gap':>8}"
             f"{'viol min':>9}{'evals':>7}"]
    for p in points:
        gap = ("    ---" if np.isnan(p.gap_pct)
               else f"{p.gap_pct:6.1f}%")
        lines.append(
            f"{p.set_index:>4d}{p.backend:>13}{p.reward_rate:>10.1f}"
            f"{gap}{p.violation_minutes:>9.2f}{p.evaluations:>7d}")
    return "\n".join(lines)
