"""Arrival-rate forecast providers for the predictive controller.

The MPC planner (:mod:`repro.control.mpc`) needs the arrival-rate
vector for each of its H lookahead steps.  A forecast provider turns
"now" into that ``(H, n_task_types)`` matrix.  Three providers cover
the evaluation spectrum (docs/CONTROL.md):

* :class:`OracleForecast` — perfect foresight: future rows are read
  straight from the arrival profile that *generates* the trace
  (:mod:`repro.workload.trace` / :mod:`repro.workload.profiles`).  The
  upper bound on what forecasting can buy.
* :class:`PersistenceForecast` — the no-information baseline: every
  future row repeats the current measurement.  An MPC fed persistence
  forecasts degenerates to a transient-aware interval controller.
* :class:`NoisyOracleForecast` — the oracle with seeded multiplicative
  log-normal noise on the future rows, for sensitivity studies.  The
  noise is a pure function of ``(seed, t0, step)``, so runs are
  reproducible and identical across ``--jobs``.

The contract every provider obeys: row 0 is always ``rates_now``
verbatim (the present is measured, never forecast), and rows never go
negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.workload.profiles import ArrivalProfile

__all__ = ["ForecastProvider", "OracleForecast", "PersistenceForecast",
           "NoisyOracleForecast", "make_forecast", "FORECAST_KINDS"]

#: Provider names accepted by :func:`make_forecast` (CLI choices).
FORECAST_KINDS = ("oracle", "persistence", "noisy")


@runtime_checkable
class ForecastProvider(Protocol):
    """Anything that can project arrival rates over a lookahead horizon."""

    def rates_ahead(self, t0: float, rates_now: np.ndarray, steps: int,
                    step_s: float) -> np.ndarray:
        """Forecast matrix of shape ``(steps, n_task_types)``.

        Row ``j`` is the rate vector expected to hold on
        ``[t0 + j * step_s, t0 + (j + 1) * step_s)``; row 0 must equal
        ``rates_now``.
        """
        ...


def _validated(t0: float, rates_now: np.ndarray, steps: int,
               step_s: float) -> np.ndarray:
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if step_s <= 0:
        raise ValueError(f"step_s must be positive, got {step_s}")
    rates = np.asarray(rates_now, dtype=float)
    if rates.ndim != 1:
        raise ValueError(f"rates_now must be a vector, got shape "
                         f"{rates.shape}")
    return rates


@dataclass(frozen=True)
class OracleForecast:
    """Perfect foresight: future rows come from the generating profile."""

    profile: ArrivalProfile

    def rates_ahead(self, t0: float, rates_now: np.ndarray, steps: int,
                    step_s: float) -> np.ndarray:
        rates = _validated(t0, rates_now, steps, step_s)
        out = np.empty((steps, rates.size))
        out[0] = rates
        for j in range(1, steps):
            out[j] = np.asarray(self.profile.rates(t0 + j * step_s),
                                dtype=float)
        return out


@dataclass(frozen=True)
class PersistenceForecast:
    """No-information baseline: tomorrow looks exactly like right now."""

    def rates_ahead(self, t0: float, rates_now: np.ndarray, steps: int,
                    step_s: float) -> np.ndarray:
        rates = _validated(t0, rates_now, steps, step_s)
        return np.tile(rates, (steps, 1))


@dataclass(frozen=True)
class NoisyOracleForecast:
    """The oracle with seeded multiplicative noise on the future rows.

    Each future row is the profile's true rate vector scaled by
    ``exp(sigma * z - sigma^2 / 2)`` with ``z`` standard normal — a
    mean-one log-normal factor, so the forecast is unbiased and never
    negative.  ``z`` is drawn from a generator seeded by
    ``(seed, round(t0 * 1000), j)``: deterministic per decision instant
    and step, independent of call order.
    """

    profile: ArrivalProfile
    sigma: float = 0.2
    seed: int = 0

    def rates_ahead(self, t0: float, rates_now: np.ndarray, steps: int,
                    step_s: float) -> np.ndarray:
        rates = _validated(t0, rates_now, steps, step_s)
        out = np.empty((steps, rates.size))
        out[0] = rates
        for j in range(1, steps):
            truth = np.asarray(self.profile.rates(t0 + j * step_s),
                               dtype=float)
            rng = np.random.default_rng(
                [self.seed, int(round(t0 * 1000.0)) & 0x7FFFFFFF, j])
            factor = np.exp(self.sigma * rng.standard_normal(rates.size)
                            - self.sigma ** 2 / 2.0)
            out[j] = truth * factor
        return out


def make_forecast(kind: str, profile: ArrivalProfile, *,
                  sigma: float = 0.2, seed: int = 0) -> ForecastProvider:
    """Build a provider by name (the CLI / policy entry point)."""
    if kind == "oracle":
        return OracleForecast(profile)
    if kind == "persistence":
        return PersistenceForecast()
    if kind == "noisy":
        return NoisyOracleForecast(profile, sigma=sigma, seed=seed)
    raise ValueError(
        f"unknown forecast kind {kind!r} (use one of {FORECAST_KINDS})")
