"""Gym-style reinforcement-learning interface over the thermal stack.

:class:`repro.rl.env.ThermalSchedulingEnv` exposes the epoch control
problem — pick CRAC outlets and a P-state profile, collect the DES
reward — through the familiar ``reset``/``step`` episode API without a
hard gymnasium dependency (duck-typed; an optional adapter wraps it in
a real ``gymnasium.Env`` when the package is installed).
:class:`repro.rl.policies.GreedyPlanPolicy` is the scripted in-repo
reference agent.
"""

from repro.rl.env import ThermalSchedulingEnv, make_gymnasium_env
from repro.rl.policies import GreedyPlanPolicy

__all__ = ["ThermalSchedulingEnv", "GreedyPlanPolicy",
           "make_gymnasium_env"]
