"""Chaos sweep: reward and thermal exposure versus fault rate.

The experiment asks how gracefully the two-step scheme degrades: a room
is generated exactly as for ``repro simulate`` (same scenario, same
trace seed), then replayed under fault timelines of increasing intensity
(:func:`repro.faults.schedule.generate_fault_schedule` with rates scaled
by a *factor*).  Factor 0 is the healthy control — bit-identical to the
fault-free run — and every other factor is reported relative to it:

* **reward retained** — achieved reward rate / healthy reward rate;
* **redline-violation minutes** — transition time above any redline;
* **MTTR-to-replan** — mean wall-clock seconds per fault re-solve;
* **tasks lost / requeued** — explicit stranded-task accounting.

Every point is a pure function of ``(ChaosConfig, factor)``, so the
sweep rides the PR-1 engine unchanged: points fan out over worker
processes (:func:`~repro.experiments.engine.parallel_map`, workers
recompute from the config so results are identical across ``--jobs``)
and land in the generic point cache
(:func:`~repro.experiments.engine.load_point` /
:func:`~repro.experiments.engine.store_point`).  Wall-clock fields
(``mean_replan_s``) are measured, not derived, and are the one part of
a point that legitimately varies between executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.engine import load_point, parallel_map, store_point
from repro.experiments.generator import Scenario, generate_scenario
from repro.faults.model import FaultSchedule
from repro.faults.policy import (ChaosRunResult, FaultAwareController,
                                 ReactionPolicy)
from repro.faults.schedule import (FaultRates, demo_rates,
                                   generate_fault_schedule)
from repro.workload.trace import generate_trace

__all__ = ["ChaosConfig", "ChaosPoint", "run_chaos_point",
           "run_chaos_scenario", "sweep_chaos", "chaos_table"]


@dataclass(frozen=True)
class ChaosConfig:
    """Everything that determines one chaos run (except the rate factor).

    Attributes
    ----------
    n_nodes / seed / horizon_s:
        Mirror ``repro simulate``: the room and power cap come from
        ``generate_scenario(scaled_down(PAPER_SET_1, n_nodes), seed)``,
        the trace from ``generate_trace(..., rng(seed + 1))``.
    psi:
        ARR aggregation level of every solve.
    stranded:
        Stranded-task disposition (``"requeue"`` / ``"drop"``).
    rates:
        Factor-1.0 fault rates; ``None`` derives
        :func:`~repro.faults.schedule.demo_rates` from the room and
        horizon.  Fault timelines draw from ``seed + 2``.
    controller:
        Replan policy: ``"interval"`` (default, the classic reactive
        loop) or ``"mpc"`` (the receding-horizon planner,
        :mod:`repro.control.mpc`).
    """

    n_nodes: int = 20
    seed: int = 1
    horizon_s: float = 30.0
    psi: float = 50.0
    stranded: str = "requeue"
    rates: FaultRates | None = None
    controller: str = "interval"

    def resolved_rates(self, n_crac: int) -> FaultRates:
        if self.rates is not None:
            return self.rates
        return demo_rates(self.horizon_s, self.n_nodes, n_crac)

    def cache_tag(self) -> str:
        return f"chaos-n{self.n_nodes}-seed{self.seed}"

    def cache_extra(self, factor: float, n_crac: int) -> dict:
        return {
            "horizon_s": self.horizon_s,
            "psi": self.psi,
            "stranded": self.stranded,
            "rates": self.resolved_rates(n_crac).to_dict(),
            "factor": factor,
            "controller": self.controller,
        }


@dataclass
class ChaosPoint:
    """One factor's summary in a chaos sweep.

    ``reward_retained`` is filled in by :func:`sweep_chaos` relative to
    the factor-0 control (``NaN`` when the control earned nothing).
    ``detail`` is the full :meth:`ChaosRunResult.to_dict` payload for
    consumers that want per-interval data.
    """

    factor: float
    n_fault_events: int
    reward_rate: float
    violation_minutes: float
    tasks_lost: int
    tasks_requeued: int
    n_replans: int
    mean_replan_s: float
    reward_retained: float = float("nan")
    detail: dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_result(cls, factor: float,
                    result: ChaosRunResult) -> "ChaosPoint":
        return cls(factor=float(factor),
                   n_fault_events=len(result.schedule),
                   reward_rate=result.reward_rate,
                   violation_minutes=result.violation_minutes,
                   tasks_lost=result.tasks_lost,
                   tasks_requeued=result.tasks_requeued,
                   n_replans=result.n_replans,
                   mean_replan_s=result.mean_replan_s,
                   detail=result.to_dict())

    def to_dict(self) -> dict:
        return {
            "factor": self.factor,
            "n_fault_events": self.n_fault_events,
            "reward_rate": self.reward_rate,
            "violation_minutes": self.violation_minutes,
            "tasks_lost": self.tasks_lost,
            "tasks_requeued": self.tasks_requeued,
            "n_replans": self.n_replans,
            "mean_replan_s": self.mean_replan_s,
            "reward_retained": self.reward_retained,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ChaosPoint":
        return cls(factor=float(doc["factor"]),
                   n_fault_events=int(doc["n_fault_events"]),
                   reward_rate=float(doc["reward_rate"]),
                   violation_minutes=float(doc["violation_minutes"]),
                   tasks_lost=int(doc["tasks_lost"]),
                   tasks_requeued=int(doc["tasks_requeued"]),
                   n_replans=int(doc["n_replans"]),
                   mean_replan_s=float(doc["mean_replan_s"]),
                   reward_retained=float(doc.get("reward_retained",
                                                 float("nan"))),
                   detail=doc.get("detail", {}))


def _chaos_inputs(config: ChaosConfig) -> tuple[Scenario, list]:
    """The exact room and trace ``repro simulate`` would use."""
    scenario = generate_scenario(scaled_down(PAPER_SET_1, config.n_nodes),
                                 config.seed)
    trace = generate_trace(scenario.workload, config.horizon_s,
                           np.random.default_rng(config.seed + 1))
    return scenario, trace


def run_chaos_scenario(config: ChaosConfig,
                       schedule: FaultSchedule) -> ChaosRunResult:
    """One chaos run under an explicit (hand-written) fault timeline."""
    scenario, trace = _chaos_inputs(config)
    controller = FaultAwareController(
        scenario.datacenter, scenario.workload, scenario.p_const,
        ReactionPolicy(psi=config.psi, stranded=config.stranded,
                       controller=config.controller))
    return controller.run(trace, config.horizon_s, schedule)


def run_chaos_point(config: ChaosConfig, factor: float) -> ChaosPoint:
    """One sweep point: draw the factor's timeline, run, summarize.

    Pure in ``(config, factor)`` up to measured wall times — a worker
    process recomputing it returns the same simulated numbers.  Factor 0
    uses the empty schedule (the healthy control), not a zero-rate draw,
    so it consumes no random numbers.
    """
    if factor < 0:
        raise ValueError("rate factor must be >= 0")
    scenario, trace = _chaos_inputs(config)
    n_crac = scenario.datacenter.n_crac
    if factor == 0:
        schedule = FaultSchedule.empty()
    else:
        schedule = generate_fault_schedule(
            config.n_nodes, n_crac, config.horizon_s,
            config.resolved_rates(n_crac).scaled(factor),
            np.random.default_rng(config.seed + 2))
    controller = FaultAwareController(
        scenario.datacenter, scenario.workload, scenario.p_const,
        ReactionPolicy(psi=config.psi, stranded=config.stranded,
                       controller=config.controller))
    result = controller.run(trace, config.horizon_s, schedule)
    return ChaosPoint.from_result(factor, result)


def sweep_chaos(config: ChaosConfig, factors: list[float], *,
                jobs: int = 1, cache_dir: str | None = None,
                resume: bool = False) -> list[ChaosPoint]:
    """Sweep fault-rate factors; always includes the factor-0 control.

    Points are cached individually (keyed on the config and factor) and
    computed through :func:`~repro.experiments.engine.parallel_map`, so
    ``--jobs`` and ``--resume`` behave exactly as in the other sweeps.
    Returned points are sorted by factor with ``reward_retained`` filled
    in relative to the control.
    """
    wanted = sorted(set(float(f) for f in factors) | {0.0})
    scenario, _ = _chaos_inputs(config)
    n_crac = scenario.datacenter.n_crac
    points: dict[float, ChaosPoint] = {}
    pending: list[float] = []
    for factor in wanted:
        payload = None
        if cache_dir is not None and resume:
            payload = load_point(cache_dir, config.cache_tag(),
                                 config.cache_extra(factor, n_crac))
        if payload is not None:
            points[factor] = ChaosPoint.from_dict(payload["point"])
        else:
            pending.append(factor)
    computed = parallel_map(partial(run_chaos_point, config), pending,
                            jobs=jobs)
    for factor, point in zip(pending, computed):
        points[factor] = point
        if cache_dir is not None:
            store_point(cache_dir, config.cache_tag(),
                        config.cache_extra(factor, n_crac),
                        {"point": point.to_dict()})
    baseline = points[0.0].reward_rate
    for point in points.values():
        point.reward_retained = (point.reward_rate / baseline
                                 if baseline > 0 else float("nan"))
    return [points[f] for f in wanted]


def chaos_table(points: list[ChaosPoint]) -> str:
    """Fixed-width text table of a chaos sweep (CLI output)."""
    lines = [f"{'factor':>7}{'faults':>7}{'reward/s':>10}{'retained':>10}"
             f"{'viol min':>9}{'lost':>6}{'requeued':>9}{'replans':>8}"
             f"{'replan s':>9}"]
    for p in points:
        retained = ("     --- " if np.isnan(p.reward_retained)
                    else f"{100 * p.reward_retained:8.1f}%")
        lines.append(
            f"{p.factor:>7.2f}{p.n_fault_events:>7d}{p.reward_rate:>10.1f}"
            f"{retained}{p.violation_minutes:>9.2f}{p.tasks_lost:>6d}"
            f"{p.tasks_requeued:>9d}{p.n_replans:>8d}"
            f"{p.mean_replan_s:>9.3f}")
    return "\n".join(lines)
