"""Power minimization under a reward-rate constraint (Section VIII).

The paper's stated future-work extension: "In data centers that must
provide stringent workload performance guarantees and where power
constraints are not active, minimizing the overall power consumption may
be a more relevant problem ... minimizing the power consumption subject
to a total reward rate constraint."

The same machinery inverts cleanly: at fixed CRAC outlet temperatures,
minimize the affine total power subject to the concave-ARR reward being
at least the target (one extra ``>=`` row over the Stage 1 segment
variables) plus the redlines; the outer discretized temperature search
then minimizes over outlets, and Stages 2-3 convert to integer P-states
and desired rates exactly as in the primal problem.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.arr import AggregateRewardRate
from repro.core.stage1 import (Stage1Solution, _node_segments,
                               build_arr_functions, distribute_node_power)
from repro.core.stage2 import solve_stage2
from repro.core.stage3 import Stage3Solution, solve_stage3
from repro.datacenter.builder import DataCenter
from repro.datacenter.power import total_power
from repro.optimize.linprog import InfeasibleError, LinearProgram
from repro.optimize.search import SearchResult, uniform_then_coordinate_search
from repro.thermal.constraints import ThermalLinearization
from repro.workload.tasktypes import Workload

__all__ = ["MinPowerResult", "solve_minpower_fixed_temps", "minimize_power"]


@dataclass
class MinPowerResult:
    """Output of the power-minimization pipeline.

    Attributes
    ----------
    t_crac_out / pstates / tc:
        Same decisions as :class:`repro.core.assignment.AssignmentResult`.
    total_power_kw:
        Exact total power (nodes + CRACs, clamped Eq. 3) at the final
        integer assignment.
    reward_rate:
        Stage 3 reward rate at the final assignment (may exceed the
        target; integer rounding can also leave it slightly short — see
        ``relaxed_reward``).
    relaxed_reward:
        Reward of the relaxed (Stage 1) solution, >= the target by
        construction.
    """

    t_crac_out: np.ndarray
    pstates: np.ndarray
    tc: np.ndarray
    total_power_kw: float
    reward_rate: float
    relaxed_reward: float
    stage1: Stage1Solution
    stage3: Stage3Solution
    search: SearchResult


def solve_minpower_fixed_temps(datacenter: DataCenter,
                               arrs: list[AggregateRewardRate],
                               linearization: ThermalLinearization,
                               reward_target: float
                               ) -> Stage1Solution | None:
    """Minimize linearized total power at fixed outlets, reward >= target.

    Returns a :class:`Stage1Solution` whose ``objective`` is the relaxed
    *reward* achieved (for downstream symmetry), or ``None`` when the
    target is unreachable or the outlets are infeasible.
    """
    lin = linearization
    base = datacenter.node_base_power
    gain = lin.inlet_gain
    base_inlet_load = gain @ base
    if np.any(base_inlet_load > lin.redline_rhs + 1e-9):
        return None

    node_of_var, caps, slopes = _node_segments(datacenter, arrs)
    n_vars = caps.size
    # objective: power contribution of each unit of core power
    power_coeff = (1.0 + lin.crac_coeff)[node_of_var]
    lp = LinearProgram(name="minpower", maximize=False)
    lp.add_variables(n_vars, lb=0.0, ub=caps, objective=power_coeff)
    # reward floor
    lp.add_ge_constraint(
        {int(i): float(s) for i, s in enumerate(slopes) if s != 0.0},
        float(reward_target))
    # redlines
    rows = gain[:, node_of_var]
    rhs = lin.redline_rhs - base_inlet_load
    lp.add_dense_le_rows(rows, rhs)
    try:
        sol = lp.solve()
    except InfeasibleError:
        return None
    fills = sol.x
    core_sums = np.bincount(node_of_var, weights=fills,
                            minlength=datacenter.n_nodes)
    node_power = base + core_sums
    t_in = lin.inlet_temperatures(node_power)
    if np.any(t_in[:lin.t_crac_out.size] < lin.t_crac_out - 1e-6):
        return None
    relaxed_reward = float(slopes @ fills)
    core_power = distribute_node_power(datacenter, arrs, core_sums)
    return Stage1Solution(
        t_crac_out=lin.t_crac_out.copy(),
        core_power_kw=core_power,
        node_power_kw=node_power,
        objective=relaxed_reward,
        linearization=lin,
        arr_functions=arrs,
    )


def minimize_power(datacenter: DataCenter, workload: Workload,
                   reward_target: float, psi: float = 50.0, *,
                   final_step: float = 1.0) -> MinPowerResult:
    """Full power-minimization pipeline (search + three stages).

    Raises ``RuntimeError`` when no outlet temperatures reach the reward
    target (the target exceeds the room's thermal capacity).
    """
    if reward_target <= 0:
        raise ValueError(f"reward target must be positive, got {reward_target}")
    model = datacenter.require_thermal()
    redline = datacenter.redline_c
    lows = [c.outlet_range_c[0] for c in datacenter.cracs]
    highs = [c.outlet_range_c[1] for c in datacenter.cracs]
    arrs = build_arr_functions(datacenter, workload, psi)
    cop_model = datacenter.cracs[0].cop_model
    cache: dict[bytes, Stage1Solution] = {}

    def objective(t_vec: np.ndarray) -> float | None:
        lin = ThermalLinearization.build(model, t_vec, redline, cop_model)
        sol = solve_minpower_fixed_temps(datacenter, arrs, lin, reward_target)
        if sol is None:
            return None
        cache[t_vec.tobytes()] = sol
        # exact power at the relaxed point, the quantity being minimized
        return total_power(datacenter, t_vec, sol.node_power_kw).total

    try:
        result = uniform_then_coordinate_search(
            objective, datacenter.n_crac, min(lows), max(highs),
            step=final_step, maximize=False)
    except RuntimeError as exc:
        raise RuntimeError(
            f"reward target {reward_target:.2f} is unreachable under the "
            "thermal constraints") from exc
    stage1 = cache[result.temperatures.tobytes()]
    stage2 = solve_stage2(datacenter, stage1)
    stage3 = solve_stage3(datacenter, workload, stage2.pstates)
    power = total_power(datacenter, stage1.t_crac_out,
                        stage2.node_power_kw).total
    return MinPowerResult(
        t_crac_out=stage1.t_crac_out,
        pstates=stage2.pstates,
        tc=stage3.tc,
        total_power_kw=power,
        reward_rate=stage3.reward_rate,
        relaxed_reward=stage1.objective,
        stage1=stage1,
        stage3=stage3,
        search=result,
    )
