"""Lint driver: file discovery, rule execution, disposition.

Deterministic by construction: files are visited in sorted order, rules
in code order, findings sorted before output — the same tree always
produces byte-identical reports (the property this linter exists to
protect in the code it checks).

Two analysis tiers share one parse of each file: the per-file AST rules
(``analysis_kind == "ast"``) run file by file; the whole-program
dataflow rules (``"dataflow"``) run once over a
:class:`~repro.lint.project.Project` assembled from the same parsed
trees.  ``--since REV`` narrows *reporting* to changed files while the
project (and therefore cross-file propagation) still sees everything.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path, PurePosixPath

from repro.lint.base import FileContext, LintConfig, RuleVisitor, all_rules
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, LintReport
from repro.lint.project import build_project
from repro.lint.suppress import Suppressions, parse_suppressions

__all__ = ["iter_python_files", "lint_paths", "select_rules"]

_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache", ".venv", "venv",
              "build", "dist", "node_modules"}

#: Valid ``--analysis`` values.
ANALYSES = ("ast", "dataflow", "all")


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for root, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in _SKIP_DIRS and not d.startswith("."))
                for name in filenames:
                    if name.endswith(".py"):
                        out.add(Path(root) / name)
        elif p.suffix == ".py":
            out.add(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(out)


def select_rules(select: list[str] | None = None,
                 ignore: list[str] | None = None) -> list[type]:
    """Resolve ``--select`` / ``--ignore`` into a rule list.

    ``select`` picks exactly those codes (and validates them);
    ``ignore`` then removes codes.  With neither, every registered rule
    runs.
    """
    rules = all_rules()
    known = {cls.code for cls in rules}
    for code in (select or []) + (ignore or []):
        if code not in known:
            raise ValueError(f"unknown rule code {code!r}; known: "
                             f"{', '.join(sorted(known))}")
    if select:
        wanted = set(select)
        rules = [cls for cls in rules if cls.code in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [cls for cls in rules if cls.code not in unwanted]
    return rules


def _rel_posix(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return str(PurePosixPath(rel))


def _parse_file(path: Path) -> tuple[FileContext | None, Finding | None]:
    """Parse one file once for both analysis tiers."""
    rel = _rel_posix(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, Finding(path=rel, line=1, col=1, code="RL000",
                             rule="parse-error",
                             message=f"cannot read file: {exc}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Finding(path=rel, line=exc.lineno or 1,
                             col=(exc.offset or 0) + 1, code="RL000",
                             rule="parse-error",
                             message=f"syntax error: {exc.msg}")
    return FileContext(path=path, rel_path=rel, source=source,
                       lines=source.splitlines(), tree=tree), None


def lint_paths(paths: list[str | Path], *,
               rules: list[type] | None = None,
               config: LintConfig | None = None,
               baseline: Baseline | None = None,
               analysis: str = "all",
               restrict_to: set[str] | None = None) -> LintReport:
    """Lint every Python file under ``paths`` and build the report.

    ``analysis`` picks the tier(s): ``"ast"`` (per-file rules),
    ``"dataflow"`` (whole-program rules) or ``"all"``.  ``restrict_to``,
    when given, is a set of resolved POSIX paths (``--since``): every
    file is still parsed — the dataflow project must see the whole tree
    — but only findings in those files are reported.
    """
    if analysis not in ANALYSES:
        raise ValueError(f"unknown analysis {analysis!r}; "
                         f"expected one of {', '.join(ANALYSES)}")
    rules = all_rules() if rules is None else rules
    config = config or LintConfig()
    ast_rules = [cls for cls in rules
                 if getattr(cls, "analysis_kind", "ast") == "ast"]
    project_rules = [cls for cls in rules
                     if getattr(cls, "analysis_kind", "ast") == "dataflow"]
    if analysis == "ast":
        project_rules = []
    elif analysis == "dataflow":
        ast_rules = []

    report = LintReport()
    raw: list[Finding] = []
    parsed: list[tuple[FileContext, Suppressions, bool]] = []
    for path in iter_python_files(paths):
        included = (restrict_to is None
                    or str(path.resolve().as_posix()) in restrict_to)
        if included:
            report.files_checked += 1
        ctx, parse_error = _parse_file(path)
        if ctx is None:
            if included and parse_error is not None:
                raw.append(parse_error)
            continue
        suppressions = parse_suppressions(ctx.source)
        parsed.append((ctx, suppressions, included))
        if not included:
            continue
        for cls in ast_rules:
            for finding in cls(ctx, config).run():
                if suppressions.is_suppressed(finding.code, finding.line):
                    report.suppressed.append(finding)
                else:
                    raw.append(finding)

    if project_rules and parsed:
        project = build_project([ctx for ctx, _, _ in parsed])
        by_path = {ctx.rel_path: (suppressions, included)
                   for ctx, suppressions, included in parsed}
        for cls in project_rules:
            for finding in cls(project, config).run():
                suppressions, included = by_path.get(
                    finding.path, (None, True))
                if not included:
                    continue
                if suppressions is not None and suppressions.is_suppressed(
                        finding.code, finding.line):
                    report.suppressed.append(finding)
                else:
                    raw.append(finding)

    for finding in sorted(raw):
        if baseline is not None and baseline.absorb(finding):
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    if baseline is not None and restrict_to is None:
        # a --since run never sees findings outside the changed set, so
        # their baseline entries would all read as (falsely) stale
        report.stale_baseline = baseline.stale_entries()
        report.baseline_drift = baseline.drifted_entries()
    report.findings.sort()
    report.suppressed.sort()
    report.baselined.sort()
    return report
