"""CSV export of experiment series (for external plotting tools).

Each exporter emits exactly the series a figure plots — one row per
bar/point, plain CSV, no third-party dependencies — so the paper's
figures can be regenerated in any plotting stack from the committed
artifacts.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.experiments.runner import SetResult
from repro.experiments.sweeps import CapSweepPoint

__all__ = ["fig6_csv", "capacity_csv", "write_csv"]


def fig6_csv(results: dict[str, SetResult]) -> str:
    """Figure 6 series: one row per (set, psi-label) bar with CI bounds."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["set", "static_fraction", "v_prop", "label",
                     "mean_improvement_pct", "ci_low", "ci_high",
                     "n_runs"])
    for name, res in results.items():
        cfg = res.config
        for label, ci in res.intervals.items():
            writer.writerow([
                name, cfg.static_fraction, cfg.v_prop, label,
                f"{ci.mean:.6f}", f"{ci.low:.6f}", f"{ci.high:.6f}",
                len(res.runs),
            ])
    return buf.getvalue()


def capacity_csv(points: list[CapSweepPoint]) -> str:
    """Capacity-planning series: one row per power cap."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["p_const_kw", "reward_three_stage", "reward_baseline",
                     "improvement_pct", "power_used_kw",
                     "marginal_reward_per_kw"])
    for p in points:
        writer.writerow([
            f"{p.p_const:.6f}", f"{p.reward_three_stage:.6f}",
            f"{p.reward_baseline:.6f}", f"{p.improvement_pct:.6f}",
            f"{p.power_used_kw:.6f}", f"{p.marginal_reward_per_kw:.6f}",
        ])
    return buf.getvalue()


def write_csv(content: str, path: str | Path) -> None:
    """Write exporter output to a file."""
    Path(path).write_text(content)
