"""Scalability ablation — solve time of the first-step assignment.

The paper's central engineering argument is that the exact MINLP "is not
scalable with respect to the number of cores", while the three-stage
technique is: its Stage 1 LP has one variable per (node, ARR segment)
— O(NCN) — and Stage 3 collapses to (node type, P-state) classes.  This
benchmark times the full three-stage pipeline as the room grows and
prints the trend (which should be near-linear in nodes, thousands of
cores per second).
"""

import time

from repro.core import three_stage_assignment
from repro.experiments import (EngineConfig, ScenarioConfig,
                               generate_scenario, run_set)


def bench_scalability(benchmark, capsys, scale, engine_jobs):
    sizes = [15, 30, 60] if not scale.is_paper else [30, 75, 150, 300]
    rows = []
    scenarios = {}
    for n in sizes:
        scenarios[n] = generate_scenario(
            ScenarioConfig(name=f"scale{n}", n_nodes=n), 500 + n)

    def solve_largest():
        sc = scenarios[sizes[-1]]
        return three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const, psi=50.0)

    result = benchmark.pedantic(solve_largest, rounds=1, iterations=1)
    assert result.reward_rate > 0

    for n in sizes:
        sc = scenarios[n]
        t0 = time.perf_counter()
        res = three_stage_assignment(sc.datacenter, sc.workload,
                                     sc.p_const, psi=50.0)
        dt = time.perf_counter() - t0
        rows.append((n, sc.datacenter.n_cores, dt, res.reward_rate))

    with capsys.disabled():
        print()
        print("scalability — three-stage solve time vs room size")
        print(f"{'nodes':>7}{'cores':>8}{'solve s':>9}{'cores/s':>10}")
        for n, cores, dt, _ in rows:
            print(f"{n:>7}{cores:>8}{dt:>9.2f}{cores / dt:>10.0f}")
        small, large = rows[0], rows[-1]
        growth = (large[2] / small[2]) / (large[0] / small[0])
        print(f"time growth per node-count growth: {growth:.2f}x "
              "(1.0 = perfectly linear)")

    # engine fan-out: the same comparison runs through the process pool
    # (REPRO_BENCH_JOBS) — wall clock should shrink ~linearly in jobs
    # while the per-run numbers stay bit-identical to the serial path.
    cfg = ScenarioConfig(name="engine-scale", n_nodes=sizes[0])
    n_runs = 4 if not scale.is_paper else 8
    t0 = time.perf_counter()
    res = run_set(cfg, n_runs=n_runs, base_seed=900,
                  engine=EngineConfig(jobs=engine_jobs))
    dt = time.perf_counter() - t0
    assert len(res.runs) + len(res.degenerate) == n_runs
    with capsys.disabled():
        print(f"engine throughput: {n_runs} comparison runs in {dt:.2f}s "
              f"with jobs={engine_jobs} ({n_runs / dt:.2f} runs/s)")
