"""Tests for repro.core.consolidation — node power-down extension."""

import numpy as np
import pytest

from repro.core.consolidation import consolidate
from repro.validate import validate_solution


@pytest.fixture(scope="module")
def consolidated(scenario):
    return consolidate(scenario.datacenter, scenario.workload,
                       scenario.p_const)


class TestConsolidation:
    def test_never_hurts_reward(self, consolidated):
        """Freed base power can only help (the plain plan remains
        feasible in the consolidated problem)."""
        assert consolidated.assignment.reward_rate \
            >= consolidated.baseline_reward - 1e-6

    def test_powered_down_nodes_fully_dark(self, scenario, consolidated):
        dc = scenario.datacenter
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        for node in dc.nodes:
            if consolidated.powered_down[node.index]:
                sl = slice(node.first_core,
                           node.first_core + node.n_cores)
                np.testing.assert_array_equal(
                    consolidated.assignment.pstates[sl], off[sl])

    def test_savings_match_mask(self, scenario, consolidated):
        expect = scenario.datacenter.node_base_power[
            consolidated.powered_down].sum()
        assert consolidated.base_power_saved_kw == pytest.approx(expect)

    def test_final_solution_valid_on_modified_room(self, scenario,
                                                   consolidated):
        rep = validate_solution(
            consolidated.datacenter, scenario.workload, scenario.p_const,
            consolidated.assignment.t_crac_out,
            consolidated.assignment.pstates,
            consolidated.assignment.tc)
        assert rep.ok, rep.violations

    def test_terminates_quickly(self, consolidated):
        assert 1 <= consolidated.iterations <= 10

    def test_uplift_positive_when_nodes_powered_down(self, consolidated):
        if consolidated.powered_down.any():
            assert consolidated.reward_uplift_pct >= 0.0

    def test_modified_room_shares_thermal_model(self, scenario,
                                                consolidated):
        assert consolidated.datacenter.thermal \
            is scenario.datacenter.thermal

    def test_power_cap_still_respected_on_original_accounting(
            self, scenario, consolidated):
        """On the modified room (zeroed bases) the total power including
        cooling stays under the cap."""
        from repro.datacenter.power import total_power
        dc2 = consolidated.datacenter
        node_power = dc2.node_power_kw(consolidated.assignment.pstates)
        total = total_power(dc2, consolidated.assignment.t_crac_out,
                            node_power).total
        assert total <= scenario.p_const + 1e-6
