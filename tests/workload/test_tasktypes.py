"""Tests for repro.workload.tasktypes — rewards, deadlines, arrivals."""

import numpy as np
import pytest

from repro.workload.ecs import generate_ecs, generate_p0_ecs
from repro.workload.tasktypes import (Workload, arrival_rates,
                                      deadline_slacks, generate_workload,
                                      rewards_from_ecs)


class TestRewards:
    def test_eq11_reciprocal_of_mean(self):
        ecs0 = np.asarray([[0.5, 1.5], [2.0, 2.0]])
        r = rewards_from_ecs(ecs0)
        np.testing.assert_allclose(r, [1.0, 0.5])

    def test_harder_tasks_worth_more(self, small_dc):
        rng = np.random.default_rng(0)
        ecs0 = generate_p0_ecs(8, small_dc.node_types, rng)
        r = rewards_from_ecs(ecs0)
        # task means double with index, so rewards roughly halve
        assert np.all(np.diff(r) < 0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            rewards_from_ecs(np.asarray([[0.0, 0.0]]))


class TestDeadlines:
    def test_eq14_bounds(self, small_dc):
        rng = np.random.default_rng(1)
        ecs = generate_ecs(8, small_dc.node_types, rng)
        m = deadline_slacks(ecs, np.random.default_rng(2))
        min_ecs = ecs[:, :, -2].min(axis=1)
        max_ecs = ecs[:, :, 0].max(axis=1)
        assert np.all(m >= 1.5 / max_ecs - 1e-12)
        assert np.all(m <= 1.5 / min_ecs + 1e-12)

    def test_some_core_always_meets_deadline(self, small_workload):
        """Eq. 14 guarantees at least one core type at P0 can make it."""
        wl = small_workload
        for i in range(wl.n_task_types):
            best = wl.ecs[i, :, 0].max()
            assert 1.0 / best <= wl.deadline_slack[i] + 1e-12


class TestArrivals:
    def test_eq15_scaling(self, small_dc):
        rng = np.random.default_rng(3)
        ecs = generate_ecs(8, small_dc.node_types, rng)
        lam = arrival_rates(ecs, small_dc, np.random.default_rng(4),
                            v_arrival=0.0)
        type_counts = np.bincount(small_dc.core_type, minlength=2)
        expect = (ecs[:, :, 0] * type_counts).sum(axis=1) / 8
        np.testing.assert_allclose(lam, expect)

    def test_variation_bounds(self, small_dc):
        rng = np.random.default_rng(5)
        ecs = generate_ecs(8, small_dc.node_types, rng)
        lam0 = arrival_rates(ecs, small_dc, np.random.default_rng(6),
                             v_arrival=0.0)
        lam = arrival_rates(ecs, small_dc, np.random.default_rng(6),
                            v_arrival=0.3)
        factor = lam / lam0
        assert np.all((factor >= 0.7) & (factor <= 1.3))

    def test_bad_v_arrival(self, small_dc):
        rng = np.random.default_rng(7)
        ecs = generate_ecs(8, small_dc.node_types, rng)
        with pytest.raises(ValueError, match="v_arrival"):
            arrival_rates(ecs, small_dc, rng, v_arrival=1.0)


class TestWorkloadContainer:
    def test_generate_full(self, small_dc):
        wl = generate_workload(small_dc, np.random.default_rng(8))
        assert wl.n_task_types == 8
        assert wl.n_node_types == 2
        assert wl.n_pstates == 5

    def test_exec_time_reciprocal(self, small_workload):
        wl = small_workload
        assert wl.exec_time(0, 0, 0) == pytest.approx(1.0 / wl.ecs[0, 0, 0])

    def test_exec_time_infinite_when_off(self, small_workload):
        assert small_workload.exec_time(0, 0, 4) == float("inf")

    def test_can_meet_deadline_consistent(self, small_workload):
        wl = small_workload
        for i in range(wl.n_task_types):
            for j in range(wl.n_node_types):
                for k in range(wl.n_pstates):
                    expect = wl.exec_time(i, j, k) <= wl.deadline_slack[i]
                    assert wl.can_meet_deadline(i, j, k) == expect

    def test_off_state_never_meets_deadline(self, small_workload):
        for i in range(small_workload.n_task_types):
            assert not small_workload.can_meet_deadline(i, 0, 4)

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="rewards"):
            Workload(ecs=np.zeros((2, 1, 3)), rewards=np.ones(3),
                     deadline_slack=np.ones(2), arrival_rates=np.ones(2))

    def test_validation_rejects_nonzero_off(self):
        ecs = np.ones((1, 1, 3))
        with pytest.raises(ValueError, match="turned-off"):
            Workload(ecs=ecs, rewards=np.ones(1),
                     deadline_slack=np.ones(1), arrival_rates=np.ones(1))

    def test_validation_rejects_negative_rates(self):
        ecs = np.concatenate([np.ones((1, 1, 2)), np.zeros((1, 1, 1))],
                             axis=2)
        with pytest.raises(ValueError, match="arrival"):
            Workload(ecs=ecs, rewards=np.ones(1),
                     deadline_slack=np.ones(1),
                     arrival_rates=np.asarray([-1.0]))
