"""RL021 good: None defaults, constructed inside the function."""


def accumulate(x, acc=None):
    acc = [] if acc is None else acc
    acc.append(x)
    return acc


def tally(key, counts=None):
    if counts is None:
        counts = {}
    counts[key] = counts.get(key, 0) + 1
    return counts
