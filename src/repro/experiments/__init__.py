"""Experiment layer: scenario generation (Section VI), the Figure 6
comparison runner (Section VII), and regenerators for every table and
figure of the paper."""

from repro.experiments.chaos import (ChaosConfig, ChaosPoint, chaos_table,
                                     run_chaos_point, run_chaos_scenario,
                                     sweep_chaos)
from repro.experiments.config import (PAPER_SET_1, PAPER_SET_2, PAPER_SET_3,
                                      ScenarioConfig, paper_sets, scaled_down)
from repro.experiments.engine import (EngineConfig, EngineError, cache_key,
                                      cache_path, parallel_map, run_set,
                                      run_sets)
from repro.experiments.figures import (example_node_type, example_workload,
                                       fig3_rr_function,
                                       fig4_rr_function_with_deadline,
                                       fig5_arr_functions, fig6_data,
                                       format_fig6)
from repro.experiments.generator import Scenario, generate_scenario
from repro.experiments.report import (ascii_bar_chart, comparison_markdown,
                                      fig6_bar_chart, fig6_markdown)
from repro.experiments.sweeps import (CapSweepPoint, RedlineSweepPoint,
                                      sweep_node_redline, sweep_power_cap)
from repro.experiments.export import capacity_csv, fig6_csv, write_csv
from repro.experiments.robustness import (RobustnessPoint, evaluate_robustness,
                                          perturb_ecs)
from repro.experiments.progress import (PrintingReporter, ProgressReporter,
                                        RunEvent)
from repro.experiments.runner import (ConfidenceInterval,
                                      DegenerateBaselineError, RunFailure,
                                      RunResult, SetResult,
                                      confidence_interval, run_comparison,
                                      run_simulation_set)
from repro.experiments.tables import (format_table1, format_table2,
                                      pstate_static_percentages, table1_rows,
                                      table2_rows)

__all__ = [
    "ChaosConfig",
    "ChaosPoint",
    "chaos_table",
    "run_chaos_point",
    "run_chaos_scenario",
    "sweep_chaos",
    "PAPER_SET_1",
    "PAPER_SET_2",
    "PAPER_SET_3",
    "ScenarioConfig",
    "paper_sets",
    "scaled_down",
    "example_node_type",
    "example_workload",
    "fig3_rr_function",
    "fig4_rr_function_with_deadline",
    "fig5_arr_functions",
    "fig6_data",
    "format_fig6",
    "Scenario",
    "generate_scenario",
    "ascii_bar_chart",
    "comparison_markdown",
    "fig6_bar_chart",
    "fig6_markdown",
    "CapSweepPoint",
    "RedlineSweepPoint",
    "sweep_node_redline",
    "sweep_power_cap",
    "capacity_csv",
    "fig6_csv",
    "write_csv",
    "RobustnessPoint",
    "evaluate_robustness",
    "perturb_ecs",
    "EngineConfig",
    "EngineError",
    "cache_key",
    "cache_path",
    "parallel_map",
    "run_set",
    "run_sets",
    "PrintingReporter",
    "ProgressReporter",
    "RunEvent",
    "ConfidenceInterval",
    "DegenerateBaselineError",
    "RunFailure",
    "RunResult",
    "SetResult",
    "confidence_interval",
    "run_comparison",
    "run_simulation_set",
    "format_table1",
    "format_table2",
    "pstate_static_percentages",
    "table1_rows",
    "table2_rows",
]
