"""Capacity planning sweep — reward vs provisioned power.

Extends Figure 6's single operating point (the Eq. 18 midpoint cap) to
the whole curve: where is the thermal-aware technique's edge largest,
and what is the marginal value of a provisioned kilowatt?  Expected
shape: the edge grows as the cap tightens (P-state choice matters most
under deep oversubscription) and vanishes near flat-out (P0-everywhere
becomes optimal for both techniques).
"""

import numpy as np

from repro.experiments.sweeps import sweep_power_cap


def bench_capacity_planning(benchmark, capsys, bench_scenario_set3):
    sc = bench_scenario_set3
    lo, hi = sc.bounds.p_min, sc.bounds.p_max
    caps = np.linspace(lo * 1.02, hi, 6)

    points = benchmark.pedantic(
        sweep_power_cap, args=(sc.datacenter, sc.workload, caps),
        rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("reward vs power cap (set-3 room)")
        print(f"{'cap kW':>8}{'3-stage/s':>11}{'baseline/s':>12}"
              f"{'edge %':>8}{'marginal r/kW':>15}")
        for p in points:
            marg = ("-" if np.isnan(p.marginal_reward_per_kw)
                    else f"{p.marginal_reward_per_kw:.1f}")
            print(f"{p.p_const:>8.1f}{p.reward_three_stage:>11.1f}"
                  f"{p.reward_baseline:>12.1f}{p.improvement_pct:>+8.2f}"
                  f"{marg:>15}")
        tight, loose = points[0], points[-1]
        print(f"edge shrinks from {tight.improvement_pct:+.2f}% (tight) "
              f"to {loose.improvement_pct:+.2f}% (near flat-out)")

    rewards = [p.reward_three_stage for p in points]
    assert all(np.diff(rewards) >= -1e-6)
    assert points[0].improvement_pct >= points[-1].improvement_pct - 1e-6
