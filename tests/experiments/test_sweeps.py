"""Tests for repro.experiments.sweeps — capacity/redline sweeps."""

import numpy as np
import pytest

from repro.experiments.sweeps import sweep_node_redline, sweep_power_cap


@pytest.fixture(scope="module")
def cap_sweep(scenario):
    lo, hi = scenario.bounds.p_min, scenario.bounds.p_max
    caps = np.linspace(lo * 1.05, hi, 4)
    return sweep_power_cap(scenario.datacenter, scenario.workload, caps)


class TestPowerCapSweep:
    def test_reward_monotone_in_cap(self, cap_sweep):
        rewards = [p.reward_three_stage for p in cap_sweep]
        assert all(np.diff(rewards) >= -1e-6)

    def test_power_used_within_cap(self, cap_sweep):
        for p in cap_sweep:
            assert p.power_used_kw <= p.p_const + 1e-6

    def test_three_stage_at_least_baseline_shape(self, cap_sweep):
        """On average across the sweep the technique leads (individual
        ties are possible at extreme caps)."""
        edges = [p.improvement_pct for p in cap_sweep]
        assert np.nanmean(edges) > 0

    def test_marginal_values_non_negative(self, cap_sweep):
        for p in cap_sweep[:-1]:
            assert p.marginal_reward_per_kw >= -1e-6
        assert np.isnan(cap_sweep[-1].marginal_reward_per_kw)

    def test_infeasible_caps_skipped(self, scenario):
        caps = np.asarray([0.5, scenario.p_const])
        points = sweep_power_cap(scenario.datacenter, scenario.workload,
                                 caps)
        assert len(points) == 1
        assert points[0].p_const == pytest.approx(scenario.p_const)

    def test_empty_caps_rejected(self, scenario):
        with pytest.raises(ValueError, match="at least one"):
            sweep_power_cap(scenario.datacenter, scenario.workload,
                            np.asarray([]))

    def test_baseline_optional(self, scenario):
        points = sweep_power_cap(scenario.datacenter, scenario.workload,
                                 np.asarray([scenario.p_const]),
                                 include_baseline=False)
        assert np.isnan(points[0].reward_baseline)


class TestRedlineSweep:
    def test_warmer_redline_never_hurts(self, scenario):
        points = sweep_node_redline(
            scenario.datacenter, scenario.workload, scenario.p_const,
            np.asarray([23.0, 25.0, 28.0]))
        rewards = [p.reward_rate for p in points]
        assert all(np.diff(rewards) >= -1e-6)

    def test_restores_original_redline(self, scenario):
        before = scenario.datacenter.node_redline_c
        sweep_node_redline(scenario.datacenter, scenario.workload,
                           scenario.p_const, np.asarray([20.0, 25.0]))
        assert scenario.datacenter.node_redline_c == before

    def test_warmer_redline_warmer_outlets(self, scenario):
        """Extra headroom is spent running the CRACs warmer (cheaper)."""
        points = sweep_node_redline(
            scenario.datacenter, scenario.workload, scenario.p_const,
            np.asarray([23.0, 30.0]))
        if len(points) == 2:
            assert points[1].t_crac_out_mean \
                >= points[0].t_crac_out_mean - 1e-9
