"""Tests for repro.datacenter.builder and .nodes — room assembly, Eq. 1."""

import numpy as np
import pytest

from repro.datacenter.builder import DataCenter, build_datacenter
from repro.datacenter.coretypes import paper_node_types


@pytest.fixture(scope="module")
def room():
    return build_datacenter(n_nodes=10, n_crac=2,
                            rng=np.random.default_rng(0))


class TestBuild:
    def test_counts(self, room):
        assert room.n_nodes == 10
        assert room.n_crac == 2
        assert room.n_cores == sum(n.n_cores for n in room.nodes)
        assert room.n_units == 12

    def test_crac_flow_matches_node_flow(self, room):
        """Section VI.G: total CRAC flow equals total node flow."""
        assert room.crac_flows.sum() == pytest.approx(room.node_flows.sum())

    def test_homogeneous_cracs(self, room):
        assert np.unique(room.crac_flows).size == 1

    def test_type_assignment_uses_rng(self):
        a = build_datacenter(50, 2, rng=np.random.default_rng(1))
        b = build_datacenter(50, 2, rng=np.random.default_rng(1))
        c = build_datacenter(50, 2, rng=np.random.default_rng(2))
        assert np.array_equal(a.node_type_index, b.node_type_index)
        assert not np.array_equal(a.node_type_index, c.node_type_index)

    def test_both_types_appear(self):
        dc = build_datacenter(60, 2, rng=np.random.default_rng(3))
        assert set(np.unique(dc.node_type_index)) == {0, 1}

    def test_global_core_index_contiguous(self, room):
        expect = 0
        for node in room.nodes:
            assert node.first_core == expect
            expect += node.n_cores
        assert expect == room.n_cores

    def test_core_maps_consistent(self, room):
        for node in room.nodes:
            for k in node.core_indices:
                assert room.core_node[k] == node.index
                assert room.core_type[k] == node.type_index

    def test_redline_vector(self, room):
        red = room.redline_c
        assert red.shape == (room.n_units,)
        np.testing.assert_allclose(red[:2], 40.0)   # CRACs
        np.testing.assert_allclose(red[2:], 25.0)   # nodes

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DataCenter(node_types=paper_node_types(), nodes=[], cracs=[],
                       layout=None)

    def test_no_node_types_rejected(self):
        with pytest.raises(ValueError, match="node type"):
            build_datacenter(5, 1, node_types=[])


class TestNodePower:
    def test_all_off_is_base_power(self, room):
        p = room.node_power_kw(room.all_off_pstates())
        np.testing.assert_allclose(p, room.node_base_power)

    def test_all_p0_is_max(self, room):
        p = room.node_power_kw(room.all_p0_pstates())
        expect = np.asarray([n.spec.max_node_power_kw for n in room.nodes])
        np.testing.assert_allclose(p, expect)

    def test_eq1_additive(self, room):
        """Turning one core from off to P0 adds exactly pi_{j,0}."""
        ps = room.all_off_pstates()
        before = room.node_power_kw(ps)
        node = room.nodes[0]
        ps[node.first_core] = 0
        after = room.node_power_kw(ps)
        assert after[0] - before[0] == pytest.approx(node.spec.p0_power_kw)
        np.testing.assert_allclose(after[1:], before[1:])

    def test_shape_check(self, room):
        with pytest.raises(ValueError, match="expected"):
            room.node_power_kw(np.zeros(3, dtype=int))

    def test_range_check(self, room):
        ps = room.all_off_pstates()
        ps[0] = 99
        with pytest.raises(IndexError):
            room.node_power_kw(ps)

    def test_node_level_matches_room_level(self, room):
        rng = np.random.default_rng(5)
        ps = rng.integers(0, 5, size=room.n_cores)
        room_level = room.node_power_kw(ps)
        for node in room.nodes:
            local = ps[node.first_core:node.first_core + node.n_cores]
            assert node.node_power_kw(local) == pytest.approx(
                room_level[node.index])

    def test_node_power_shape_check(self, room):
        with pytest.raises(ValueError, match="expects"):
            room.nodes[0].node_power_kw([0, 1])


class TestThermalAttachment:
    def test_require_thermal_raises_before_attach(self):
        dc = build_datacenter(5, 1, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="thermal"):
            dc.require_thermal()
