"""Kernel speedups — reference (scalar) vs vectorized hot loops.

Times the five dispatched solver primitives on a Figure-6-scale room
(150 nodes, the paper's Section VI setup) and a 10x room (1500 nodes,
the scaling regime SCALING.md targets), asserting kernel equivalence on
the exact inputs being timed, and writes ``BENCH_kernels.json`` to the
repo root.  CI gates on ``rooms.fig6.overall_speedup >= 2``.

Both rooms use a synthetic uniform-mixing matrix
(``alpha[i, j] = F[j] / sum(F)`` — row-stochastic and flow-conserving,
so it passes :class:`~repro.thermal.heatflow.HeatFlowModel` validation)
instead of the Table II interference LP: kernel timings depend only on
problem shape, and the LP that generates realistic coefficients is
intractable at 1500 nodes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.stage1 import build_arr_functions
from repro.datacenter import build_datacenter
from repro.kernels import reference, vectorized
from repro.kernels.tables import core_power_table
from repro.thermal.heatflow import HeatFlowModel
from repro.workload import generate_workload

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

BATCH = 64
REPS = 3


def _room(n_nodes: int, seed: int):
    rng = np.random.default_rng(seed)
    dc = build_datacenter(n_nodes=n_nodes, n_crac=3, rng=rng)
    flows = dc.unit_flows
    alpha = np.tile(flows / flows.sum(), (flows.size, 1))
    dc.thermal = HeatFlowModel(alpha, flows, dc.n_crac)
    workload = generate_workload(dc, rng)
    arrs = build_arr_functions(dc, workload, psi=50.0)
    return dc, arrs


def _best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_room(n_nodes: int, seed: int) -> dict:
    dc, arrs = _room(n_nodes, seed)
    model = dc.require_thermal()
    tab = core_power_table(dc)
    rng = np.random.default_rng(seed + 1)

    t_crac = rng.uniform(12.0, 22.0, size=(BATCH, model.n_crac))
    powers = rng.uniform(0.0, 1.5, size=(BATCH, dc.n_nodes))
    eta = tab.n_pstates[dc.core_type]
    pstates = rng.integers(0, eta, size=dc.n_cores)
    batch_pstates = rng.integers(0, eta, size=(BATCH, dc.n_cores))
    core_power = tab.power[dc.core_type, pstates] \
        * rng.uniform(0.85, 1.0, size=dc.n_cores)
    budgets = dc.node_power_kw(pstates)
    tops = np.asarray([arrs[t].concave.x[-1] for t in dc.node_type_index])
    node_core_power = rng.uniform(0.0, 1.0, size=dc.n_nodes) \
        * tops * tab.node_n_cores

    ops = {}

    def op(name, ref_fn, vec_fn, check):
        ref_out, vec_out = ref_fn(), vec_fn()
        check(ref_out, vec_out)
        ref_s = _best_of(ref_fn)
        vec_s = _best_of(vec_fn)
        ops[name] = {"reference_s": ref_s, "vectorized_s": vec_s,
                     "speedup": ref_s / vec_s}

    def steady_close(a, b):
        for x, y in zip(a, b):
            assert np.allclose(x, y, rtol=1e-9, atol=1e-9)

    def exact(a, b):
        if isinstance(a, tuple):
            for x, y in zip(a, b):
                assert np.array_equal(x, y)
        else:
            assert np.array_equal(a, b)

    op("steady_state_batch",
       lambda: reference.steady_state_batch(model, t_crac, powers),
       lambda: vectorized.steady_state_batch(model, t_crac, powers),
       steady_close)
    op("node_power_kw",
       lambda: reference.node_power_kw(dc, pstates),
       lambda: vectorized.node_power_kw(dc, pstates),
       exact)
    op("node_power_batch",
       lambda: reference.node_power_batch(dc, batch_pstates),
       lambda: vectorized.node_power_batch(dc, batch_pstates),
       exact)
    op("convert_power_to_pstates",
       lambda: reference.convert_power_to_pstates(dc, core_power, budgets),
       lambda: vectorized.convert_power_to_pstates(dc, core_power, budgets),
       exact)
    op("stage1_assemble_distribute",
       lambda: (reference.assemble_segments(dc, arrs),
                reference.distribute_node_power(dc, arrs, node_core_power)),
       lambda: (vectorized.assemble_segments(dc, arrs),
                vectorized.distribute_node_power(dc, arrs,
                                                 node_core_power)),
       lambda a, b: (exact(a[0], b[0]), exact(a[1], b[1])))

    total_ref = sum(o["reference_s"] for o in ops.values())
    total_vec = sum(o["vectorized_s"] for o in ops.values())
    return {
        "n_nodes": dc.n_nodes,
        "n_cores": dc.n_cores,
        "batch": BATCH,
        "ops": ops,
        "overall_speedup": total_ref / total_vec,
    }


def bench_kernels(benchmark, capsys, scale):
    rooms = {
        "fig6": _bench_room(150, 2012),
        "paper10x": _bench_room(1500, 2013),
    }
    doc = {"schema": 1, "reps": REPS, "rooms": rooms}
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # keep pytest-benchmark's machinery engaged (one cheap round)
    fig6_dc, fig6_arrs = _room(150, 2012)
    rng = np.random.default_rng(7)
    eta = core_power_table(fig6_dc).n_pstates[fig6_dc.core_type]
    ps = rng.integers(0, eta, size=fig6_dc.n_cores)
    benchmark.pedantic(vectorized.node_power_kw, args=(fig6_dc, ps),
                       rounds=1, iterations=1)

    with capsys.disabled():
        print()
        for name, room in rooms.items():
            print(f"{name}: {room['n_nodes']} nodes, "
                  f"{room['n_cores']} cores, batch {room['batch']}")
            for op_name, o in room["ops"].items():
                print(f"  {op_name:28s} ref {o['reference_s'] * 1e3:9.2f} ms"
                      f"  vec {o['vectorized_s'] * 1e3:9.2f} ms"
                      f"  x{o['speedup']:7.1f}")
            print(f"  {'overall':28s} x{room['overall_speedup']:7.1f}")
        print(f"written to {OUT_PATH.name}")

    assert rooms["fig6"]["overall_speedup"] >= 2.0, \
        "vectorized kernels regressed below the 2x gate on the fig6 room"
