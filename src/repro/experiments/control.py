"""Control sweep: predictive (MPC) versus reactive (interval) control.

The experiment isolates the value of *looking ahead*.  One room, one
flash-crowd arrival profile, one seeded fault timeline per intensity
factor — replayed twice per factor, once under the classic reactive
interval controller and once under the receding-horizon planner
(:mod:`repro.control.mpc`).  Both arms share every tolerance (``psi``,
derate loop, warm policy) and the same epoch grid, so the only
difference is the control law: the interval controller reacts to the
transition it is already in, the MPC plans against the forecast and
pre-cools (banks cold-air headroom at full compute) before it derates.

Reported per arm and factor:

* **reward rate** and **reward retained** relative to that arm's own
  fault-free (factor-0) control;
* **redline-violation minutes** over the transition trajectories;
* escalation counts — pre-cools, derates, shed intervals.

Points carry no wall-clock fields and no measured-time detail, so a
point is a *byte-identical* pure function of ``(config, arm)`` —
``--jobs 2`` must reproduce ``--jobs 1`` exactly (the CI ``mpc-smoke``
job diffs the JSON) and the small sweep is pinned as a golden baseline.
Caching and fan-out ride the PR-1 engine unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.control.mpc import MPCConfig
from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.engine import load_point, parallel_map, store_point
from repro.experiments.generator import Scenario, generate_scenario
from repro.faults.model import FaultSchedule
from repro.faults.policy import (ChaosRunResult, FaultAwareController,
                                 ReactionPolicy)
from repro.faults.schedule import (FaultRates, demo_rates,
                                   generate_fault_schedule)
from repro.workload.profiles import (ConstantProfile,
                                     generate_nonstationary_trace)
from repro.workload.trace import FlashCrowdProfile

__all__ = ["CONTROLLERS", "ControlConfig", "ControlPoint",
           "run_control_point", "sweep_control", "control_table"]

#: Controller arms of the sweep (CLI choices).
CONTROLLERS = ("interval", "mpc")


@dataclass(frozen=True)
class ControlConfig:
    """Everything that determines one control-sweep arm except
    ``(controller, factor)``.

    Attributes
    ----------
    n_nodes / seed / horizon_s:
        Room and power cap from
        ``generate_scenario(scaled_down(PAPER_SET_1, n_nodes), seed)``;
        the non-stationary trace draws from ``seed + 1`` and fault
        timelines from ``seed + 2`` (the ``repro chaos`` convention).
    epoch_s:
        Decision epoch of both arms — the interval controller replans
        on this grid too, so the arms see identical rate measurements.
    burst_start_s / burst_duration_s / burst_magnitude:
        The flash crowd multiplied onto the scenario's base rates.
    psi:
        ARR aggregation level of every solve (both arms).
    horizon_steps:
        MPC lookahead depth, in epochs.
    precool_step_c / max_precool:
        MPC pre-cool escalation.
    forecast:
        MPC forecast provider kind (:mod:`repro.control.forecast`).
    stranded:
        Stranded-task disposition at fault boundaries.
    rates:
        Factor-1.0 fault rates; ``None`` derives
        :func:`~repro.faults.schedule.demo_rates`.
    """

    n_nodes: int = 12
    seed: int = 1
    horizon_s: float = 360.0
    epoch_s: float = 60.0
    burst_start_s: float = 120.0
    burst_duration_s: float = 120.0
    burst_magnitude: float = 4.0
    psi: float = 50.0
    horizon_steps: int = 3
    precool_step_c: float = 1.0
    max_precool: int = 3
    forecast: str = "oracle"
    stranded: str = "requeue"
    rates: FaultRates | None = None

    def profile(self, base_rates: np.ndarray) -> FlashCrowdProfile:
        """The flash-crowd arrival profile over the scenario's rates."""
        return FlashCrowdProfile(
            ConstantProfile(np.asarray(base_rates, dtype=float)),
            bursts=((self.burst_start_s, self.burst_duration_s,
                     self.burst_magnitude),))

    def policy(self, controller: str) -> ReactionPolicy:
        """The reaction policy of one arm (shared knobs, one control law)."""
        if controller not in CONTROLLERS:
            raise ValueError(
                f"controller must be one of {CONTROLLERS}, "
                f"got {controller!r}")
        return ReactionPolicy(
            psi=self.psi, stranded=self.stranded, controller=controller,
            epoch_s=self.epoch_s, forecast=self.forecast,
            mpc=MPCConfig(
                horizon_steps=self.horizon_steps, step_s=self.epoch_s,
                psi=self.psi, precool_step_c=self.precool_step_c,
                max_precool=self.max_precool) if controller == "mpc"
            else None)

    def resolved_rates(self, n_crac: int) -> FaultRates:
        if self.rates is not None:
            return self.rates
        return demo_rates(self.horizon_s, self.n_nodes, n_crac)

    def cache_tag(self) -> str:
        return f"control-n{self.n_nodes}-seed{self.seed}"

    def cache_extra(self, controller: str, factor: float,
                    n_crac: int) -> dict:
        return {
            "horizon_s": self.horizon_s,
            "epoch_s": self.epoch_s,
            "burst_start_s": self.burst_start_s,
            "burst_duration_s": self.burst_duration_s,
            "burst_magnitude": self.burst_magnitude,
            "psi": self.psi,
            "horizon_steps": self.horizon_steps,
            "precool_step_c": self.precool_step_c,
            "max_precool": self.max_precool,
            "forecast": self.forecast,
            "stranded": self.stranded,
            "rates": self.resolved_rates(n_crac).to_dict(),
            "controller": controller,
            "factor": factor,
        }


@dataclass
class ControlPoint:
    """One ``(controller, factor)`` arm's summary.

    Deliberately carries **no wall-clock fields and no detail payload**:
    every field is a deterministic function of ``(config, arm)``, so the
    sweep's JSON is byte-identical across ``--jobs`` and golden-safe.
    ``reward_retained`` is filled by :func:`sweep_control` relative to
    the same controller's factor-0 run.
    """

    controller: str
    factor: float
    n_fault_events: int
    reward_rate: float
    violation_minutes: float
    tasks_lost: int
    n_replans: int
    precools: int
    derates: int
    sheds: int
    reward_retained: float = float("nan")

    @classmethod
    def from_result(cls, controller: str, factor: float,
                    result: ChaosRunResult) -> "ControlPoint":
        return cls(controller=controller, factor=float(factor),
                   n_fault_events=len(result.schedule),
                   reward_rate=result.reward_rate,
                   violation_minutes=result.violation_minutes,
                   tasks_lost=result.tasks_lost,
                   n_replans=result.n_replans,
                   precools=result.precools,
                   derates=result.derates,
                   sheds=result.shed_intervals)

    def to_dict(self) -> dict:
        return {
            "controller": self.controller,
            "factor": self.factor,
            "n_fault_events": self.n_fault_events,
            "reward_rate": self.reward_rate,
            "violation_minutes": self.violation_minutes,
            "tasks_lost": self.tasks_lost,
            "n_replans": self.n_replans,
            "precools": self.precools,
            "derates": self.derates,
            "sheds": self.sheds,
            "reward_retained": self.reward_retained,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ControlPoint":
        return cls(controller=str(doc["controller"]),
                   factor=float(doc["factor"]),
                   n_fault_events=int(doc["n_fault_events"]),
                   reward_rate=float(doc["reward_rate"]),
                   violation_minutes=float(doc["violation_minutes"]),
                   tasks_lost=int(doc["tasks_lost"]),
                   n_replans=int(doc["n_replans"]),
                   precools=int(doc["precools"]),
                   derates=int(doc["derates"]),
                   sheds=int(doc["sheds"]),
                   reward_retained=float(doc.get("reward_retained",
                                                 float("nan"))))


def _control_inputs(config: ControlConfig) -> tuple[Scenario, object, list]:
    """Room, profile and non-stationary trace shared by both arms."""
    scenario = generate_scenario(scaled_down(PAPER_SET_1, config.n_nodes),
                                 config.seed)
    profile = config.profile(scenario.workload.arrival_rates)
    trace = generate_nonstationary_trace(
        scenario.workload, profile, config.horizon_s,
        np.random.default_rng(config.seed + 1))
    return scenario, profile, trace


def run_control_point(config: ControlConfig, controller: str,
                      factor: float) -> ControlPoint:
    """One arm: draw the factor's timeline, run, summarize.

    Byte-identically pure in ``(config, controller, factor)`` — no wall
    times survive into the point.  Factor 0 uses the empty schedule
    (consumes no random numbers), matching ``repro chaos``.
    """
    if factor < 0:
        raise ValueError("rate factor must be >= 0")
    scenario, profile, trace = _control_inputs(config)
    n_crac = scenario.datacenter.n_crac
    if factor == 0:
        schedule = FaultSchedule.empty()
    else:
        schedule = generate_fault_schedule(
            config.n_nodes, n_crac, config.horizon_s,
            config.resolved_rates(n_crac).scaled(factor),
            np.random.default_rng(config.seed + 2))
    loop = FaultAwareController(
        scenario.datacenter, scenario.workload, scenario.p_const,
        config.policy(controller))
    result = loop.run(trace, config.horizon_s, schedule, profile=profile)
    return ControlPoint.from_result(controller, factor, result)


def _run_arm(config: ControlConfig,
             arm: tuple[str, float]) -> ControlPoint:
    """Module-level worker wrapper (picklable for ``parallel_map``)."""
    return run_control_point(config, arm[0], arm[1])


def sweep_control(config: ControlConfig, factors: list[float],
                  controllers: tuple[str, ...] = CONTROLLERS, *,
                  jobs: int = 1, cache_dir: str | None = None,
                  resume: bool = False) -> list[ControlPoint]:
    """Sweep ``controllers x factors``; always includes each arm's
    factor-0 control.

    Points are cached individually and fan out through
    :func:`~repro.experiments.engine.parallel_map`, so ``--jobs`` /
    ``--resume`` behave exactly as in the other sweeps.  Returned
    points are ordered controller-major, factor-minor, with
    ``reward_retained`` filled in against the same controller's
    factor-0 run.
    """
    for controller in controllers:
        if controller not in CONTROLLERS:
            raise ValueError(
                f"controller must be one of {CONTROLLERS}, "
                f"got {controller!r}")
    wanted = sorted(set(float(f) for f in factors) | {0.0})
    arms = [(c, f) for c in controllers for f in wanted]
    scenario, _, _ = _control_inputs(config)
    n_crac = scenario.datacenter.n_crac
    points: dict[tuple[str, float], ControlPoint] = {}
    pending: list[tuple[str, float]] = []
    for arm in arms:
        payload = None
        if cache_dir is not None and resume:
            payload = load_point(cache_dir, config.cache_tag(),
                                 config.cache_extra(arm[0], arm[1],
                                                    n_crac))
        if payload is not None:
            points[arm] = ControlPoint.from_dict(payload["point"])
        else:
            pending.append(arm)
    computed = parallel_map(partial(_run_arm, config), pending, jobs=jobs)
    for arm, point in zip(pending, computed):
        points[arm] = point
        if cache_dir is not None:
            store_point(cache_dir, config.cache_tag(),
                        config.cache_extra(arm[0], arm[1], n_crac),
                        {"point": point.to_dict()})
    for controller in controllers:
        baseline = points[(controller, 0.0)].reward_rate
        for (c, _), point in points.items():
            if c == controller:
                point.reward_retained = (point.reward_rate / baseline
                                         if baseline > 0 else float("nan"))
    return [points[arm] for arm in arms]


def control_table(points: list[ControlPoint]) -> str:
    """Fixed-width text table of a control sweep (CLI output)."""
    lines = [f"{'ctrl':>9}{'factor':>7}{'faults':>7}{'reward/s':>10}"
             f"{'retained':>10}{'viol min':>9}{'lost':>6}{'precool':>8}"
             f"{'derate':>7}{'shed':>5}"]
    for p in points:
        retained = ("     --- " if np.isnan(p.reward_retained)
                    else f"{100 * p.reward_retained:8.1f}%")
        lines.append(
            f"{p.controller:>9}{p.factor:>7.2f}{p.n_fault_events:>7d}"
            f"{p.reward_rate:>10.1f}{retained}"
            f"{p.violation_minutes:>9.2f}{p.tasks_lost:>6d}"
            f"{p.precools:>8d}{p.derates:>7d}{p.sheds:>5d}")
    return "\n".join(lines)
