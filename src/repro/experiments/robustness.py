"""Robustness of first-step plans to ECS estimation error.

The whole pipeline runs on *estimated* computational speeds ("The ETC
values for a given system can be obtained from user supplied
information, experimental data, or task profiling" — Section III.D).
Estimates are stale or noisy in practice, so a natural question the
paper leaves open (its authors' companion work studies robust resource
allocation) is how much reward a plan loses when the true ECS deviates
from the estimate it was optimized for.

Protocol: plan on the nominal workload; then, for each perturbation
level δ, multiply the true ECS by i.i.d. ``rand[1-δ, 1+δ]`` factors and
re-evaluate the *frozen* decisions — P-states and CRAC outlets stay, and
the desired rates are re-derived by Stage 3 on the true workload (the
second step would adapt rates online; P-states are the sticky decision).
Reported per level: mean achieved reward relative to the ideal plan that
knew the truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.assignment import three_stage_assignment
from repro.core.stage3 import solve_stage3
from repro.datacenter.builder import DataCenter
from repro.workload.tasktypes import Workload

__all__ = ["RobustnessPoint", "perturb_ecs", "evaluate_robustness"]


@dataclass(frozen=True)
class RobustnessPoint:
    """Aggregated outcome at one perturbation level.

    ``achieved_fraction`` is the mean over trials of (frozen plan's
    reward on the truth) / (oracle plan's reward on the truth); 1.0
    means ECS error did not matter at all.
    """

    delta: float
    achieved_fraction: float
    worst_fraction: float
    n_trials: int


def perturb_ecs(workload: Workload, delta: float,
                rng: np.random.Generator) -> Workload:
    """A "true" workload whose ECS deviates by ``rand[1-delta, 1+delta]``.

    Monotonicity across P-states is restored by sorting each (type,
    node-type) ladder descending, mirroring the Section VI.C repair; the
    off state stays zero.  Rewards/deadlines/rates are unchanged (they
    are contractual, not estimated).
    """
    if not 0.0 <= delta < 1.0:
        raise ValueError(f"delta must be in [0, 1), got {delta}")
    ecs = workload.ecs.copy()
    active = ecs[:, :, :-1]
    noise = rng.uniform(1.0 - delta, 1.0 + delta, size=active.shape)
    perturbed = active * noise
    # restore the physical ordering: higher P-state never faster
    perturbed = -np.sort(-perturbed, axis=2)
    ecs[:, :, :-1] = perturbed
    return replace(workload, ecs=ecs)


def evaluate_robustness(datacenter: DataCenter, workload: Workload,
                        p_const: float, deltas, *,
                        n_trials: int = 5, psi: float = 50.0,
                        seed: int = 0) -> list[RobustnessPoint]:
    """Sweep perturbation levels; see module docstring for the protocol."""
    if n_trials <= 0:
        raise ValueError("need at least one trial")
    plan = three_stage_assignment(datacenter, workload, p_const, psi=psi)
    points: list[RobustnessPoint] = []
    for delta in deltas:
        fractions = []
        for t in range(n_trials):
            rng = np.random.default_rng(seed + 1000 * t + int(delta * 1e6))
            truth = perturb_ecs(workload, float(delta), rng)
            # frozen decisions, rates re-derived on the truth
            frozen = solve_stage3(datacenter, truth, plan.pstates)
            # oracle re-plans everything on the truth
            oracle = three_stage_assignment(datacenter, truth, p_const,
                                            psi=psi)
            if oracle.reward_rate <= 0:
                continue
            fractions.append(frozen.reward_rate / oracle.reward_rate)
        if not fractions:
            continue
        points.append(RobustnessPoint(
            delta=float(delta),
            achieved_fraction=float(np.mean(fractions)),
            worst_fraction=float(np.min(fractions)),
            n_trials=len(fractions),
        ))
    return points
