"""Experiment configuration (Section VI) and the paper's simulation sets.

The paper runs three sets of 25 simulations, each on a fresh random room
of 150 nodes / 3 CRACs / 8 task types, varying two knobs:

========  =====================  ========
set       P-state-0 static power  V_prop
========  =====================  ========
1         30%                     0.1
2         30%                     0.3
3         20%                     0.3
========  =====================  ========

``ScenarioConfig`` captures every generator parameter so a scenario is
fully determined by ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ScenarioConfig", "PAPER_SET_1", "PAPER_SET_2", "PAPER_SET_3",
           "paper_sets", "scaled_down"]


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of the Section VI setup.

    Attributes mirror the paper's symbols: ``v_ecs`` (``V_ECS``),
    ``v_prop`` (``V_prop``), ``v_arrival`` (``V_arrival``),
    ``static_fraction`` (P-state-0 static power share), ``psis`` (the ψ
    levels evaluated), ``search`` (CRAC temperature search mode, see
    :func:`repro.core.stage1.solve_stage1`).

    ``backend`` / ``backend_seed`` / ``max_evals`` select the solver
    backend runs solve with (see :mod:`repro.solvers`) and, for the
    metaheuristic backends, the RNG seed and evaluation budget.  All
    three feed the engine cache key — runs under different backends or
    budgets never share cached points.

    ``thermal_backend`` picks the heat-flow linear-algebra backend
    (``"auto"`` / ``"dense"`` / ``"sparse"``, see
    :class:`~repro.thermal.heatflow.HeatFlowModel`).  It also feeds the
    cache key: the backends agree only within float tolerance, so
    cached points are never mixed across them.
    """

    name: str = "set1"
    n_nodes: int = 150
    n_crac: int = 3
    n_task_types: int = 8
    static_fraction: float = 0.3
    v_ecs: float = 0.1
    v_prop: float = 0.1
    v_arrival: float = 0.3
    psis: tuple[float, ...] = (25.0, 50.0)
    search: str = "fast"
    facing_share: float = 0.7
    nodes_per_rack: int = 5
    crac_outlet_low_c: float = 10.0
    crac_outlet_high_c: float = 25.0
    backend: str = "three_stage"
    backend_seed: int = 0
    max_evals: int = 2000
    thermal_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n_nodes <= 0 or self.n_crac <= 0 or self.n_task_types <= 0:
            raise ValueError("scenario sizes must be positive")
        if not self.psis:
            raise ValueError("need at least one psi level")
        if self.max_evals < 1:
            raise ValueError("max_evals must be at least 1")
        if self.thermal_backend not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"unknown thermal backend {self.thermal_backend!r} "
                "(expected 'auto', 'dense' or 'sparse')")


#: Paper simulation set 1: static 30%, V_prop = 0.1.
PAPER_SET_1 = ScenarioConfig(name="set1", static_fraction=0.3, v_prop=0.1)
#: Paper simulation set 2: static 30%, V_prop = 0.3.
PAPER_SET_2 = ScenarioConfig(name="set2", static_fraction=0.3, v_prop=0.3)
#: Paper simulation set 3: static 20%, V_prop = 0.3.
PAPER_SET_3 = ScenarioConfig(name="set3", static_fraction=0.2, v_prop=0.3)


def paper_sets() -> list[ScenarioConfig]:
    """The three Figure 6 simulation sets, in paper order."""
    return [PAPER_SET_1, PAPER_SET_2, PAPER_SET_3]


def scaled_down(config: ScenarioConfig, n_nodes: int = 30) -> ScenarioConfig:
    """A smaller room with the same physics, for quick benchmarks/tests."""
    return replace(config, n_nodes=n_nodes)
