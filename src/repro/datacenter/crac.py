"""CRAC unit description (Section III.E).

The paper assumes homogeneous CRAC units whose total air flow matches
the total compute-node air flow (Section VI.G); each unit's power is
given by Eqs. 2-3 using the CoP curve of Eq. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.cop import CoPModel, HP_UTILITY_COP
from repro.power.crac import crac_power_kw

__all__ = ["CRACUnit"]


@dataclass(frozen=True)
class CRACUnit:
    """One CRAC unit.

    Attributes
    ----------
    index:
        CRAC index ``i`` in ``0..NCRAC-1``; unit *i* faces hot aisle *i*.
    flow_m3s:
        Air flow rate ``FCRAC_i``.
    cop_model:
        Coefficient-of-performance curve (defaults to Eq. 8).
    outlet_range_c:
        Admissible assigned outlet temperatures, used to bound the
        discretized search of Section V.B.2.
    """

    index: int
    flow_m3s: float
    cop_model: CoPModel = field(default=HP_UTILITY_COP)
    outlet_range_c: tuple[float, float] = (10.0, 25.0)

    def __post_init__(self) -> None:
        if self.flow_m3s <= 0:
            raise ValueError(f"CRAC {self.index}: flow must be positive")
        lo, hi = self.outlet_range_c
        if lo > hi:
            raise ValueError(f"CRAC {self.index}: empty outlet range "
                             f"{self.outlet_range_c}")

    def power_kw(self, inlet_temp_c: float, outlet_temp_c: float) -> float:
        """Electrical power at the given inlet/outlet temperatures (Eq. 3)."""
        return crac_power_kw(self.flow_m3s, inlet_temp_c, outlet_temp_c,
                             cop_model=self.cop_model)
