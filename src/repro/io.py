"""JSON persistence for rooms, workloads and assignments.

Reproduction tooling: every object a Figure 6 run needs can be saved to
a JSON document and reloaded bit-exactly, so specific rooms (e.g. the
ones behind an interesting data point) can be archived, shared and
re-analyzed without re-running the generators.

The format is versioned (``"format"`` key) and deliberately flat: numpy
arrays become nested lists, dataclasses become objects.  Loaders
validate dimensions through the same constructors the generators use,
so a corrupted document fails loudly rather than producing a subtly
broken room.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.datacenter.coretypes import NodeTypeSpec
from repro.datacenter.crac import CRACUnit
from repro.datacenter.layout import build_layout
from repro.datacenter.nodes import ComputeNode
from repro.power.cop import CoPModel
from repro.thermal.heatflow import HeatFlowModel
from repro.workload.tasktypes import Workload

__all__ = [
    "workload_to_dict", "workload_from_dict",
    "node_type_to_dict", "node_type_from_dict",
    "datacenter_to_dict", "datacenter_from_dict",
    "assignment_to_dict",
    "save_json", "load_json",
]

FORMAT_VERSION = 1


def _require(doc: dict, kind: str) -> None:
    if doc.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported document format {doc.get('format')!r} "
            f"(expected {FORMAT_VERSION})")
    if doc.get("kind") != kind:
        raise ValueError(f"expected a {kind!r} document, got "
                         f"{doc.get('kind')!r}")


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------
def workload_to_dict(workload: Workload) -> dict[str, Any]:
    """Serialize a :class:`~repro.workload.tasktypes.Workload`."""
    return {
        "format": FORMAT_VERSION,
        "kind": "workload",
        "ecs": workload.ecs.tolist(),
        "rewards": workload.rewards.tolist(),
        "deadline_slack": workload.deadline_slack.tolist(),
        "arrival_rates": workload.arrival_rates.tolist(),
    }


def workload_from_dict(doc: dict[str, Any]) -> Workload:
    """Rebuild a workload; validation happens in the constructor."""
    _require(doc, "workload")
    return Workload(
        ecs=np.asarray(doc["ecs"], dtype=float),
        rewards=np.asarray(doc["rewards"], dtype=float),
        deadline_slack=np.asarray(doc["deadline_slack"], dtype=float),
        arrival_rates=np.asarray(doc["arrival_rates"], dtype=float),
    )


# ---------------------------------------------------------------------------
# node types
# ---------------------------------------------------------------------------
def node_type_to_dict(spec: NodeTypeSpec) -> dict[str, Any]:
    """Serialize a node type (the derived P-state powers included)."""
    return {
        "name": spec.name,
        "base_power_kw": spec.base_power_kw,
        "cores_per_node": spec.cores_per_node,
        "frequencies_mhz": list(spec.frequencies_mhz),
        "voltages_v": list(spec.voltages_v),
        "pstate_power_kw": list(spec.pstate_power_kw),
        "flow_m3s": spec.flow_m3s,
        "performance_scale": spec.performance_scale,
        "static_fraction_p0": spec.static_fraction_p0,
    }


def node_type_from_dict(doc: dict[str, Any]) -> NodeTypeSpec:
    return NodeTypeSpec(
        name=doc["name"],
        base_power_kw=float(doc["base_power_kw"]),
        cores_per_node=int(doc["cores_per_node"]),
        frequencies_mhz=tuple(doc["frequencies_mhz"]),
        voltages_v=tuple(doc["voltages_v"]),
        pstate_power_kw=tuple(doc["pstate_power_kw"]),
        flow_m3s=float(doc["flow_m3s"]),
        performance_scale=float(doc["performance_scale"]),
        static_fraction_p0=float(doc["static_fraction_p0"]),
    )


# ---------------------------------------------------------------------------
# data center (geometry + thermal model)
# ---------------------------------------------------------------------------
def datacenter_to_dict(datacenter: DataCenter) -> dict[str, Any]:
    """Serialize a room, including its cross-interference matrix.

    The thermal model (if attached) is stored as the raw ``alpha``
    matrix; everything else it needs (flows, CRAC count) is already in
    the geometry.
    """
    alpha = None
    if datacenter.thermal is not None:
        model: HeatFlowModel = datacenter.thermal
        # reconstruct alpha from the mixing matrix:
        # mix[j, i] = alpha[i, j] * F_i / F_j  =>
        # alpha[i, j] = mix[j, i] * F_j / F_i
        flows = datacenter.unit_flows
        alpha = (model.mix_dense.T
                 * flows[None, :] / flows[:, None]).tolist()
    crac0 = datacenter.cracs[0]
    return {
        "format": FORMAT_VERSION,
        "kind": "datacenter",
        "node_types": [node_type_to_dict(t) for t in datacenter.node_types],
        "type_index": datacenter.node_type_index.tolist(),
        "n_crac": datacenter.n_crac,
        "nodes_per_rack": int(np.max(datacenter.layout.slot_of_node)) + 1,
        "crac_outlet_range_c": list(crac0.outlet_range_c),
        "cop_coefficients": [crac0.cop_model.a2, crac0.cop_model.a1,
                             crac0.cop_model.a0],
        "node_redline_c": datacenter.node_redline_c,
        "crac_redline_c": datacenter.crac_redline_c,
        "alpha": alpha,
    }


def datacenter_from_dict(doc: dict[str, Any]) -> DataCenter:
    """Rebuild a room (and re-attach its thermal model if stored)."""
    _require(doc, "datacenter")
    node_types = [node_type_from_dict(t) for t in doc["node_types"]]
    type_index = [int(i) for i in doc["type_index"]]
    if any(not 0 <= i < len(node_types) for i in type_index):
        raise ValueError("type_index out of range for the stored catalog")
    n_nodes = len(type_index)
    n_crac = int(doc["n_crac"])
    layout = build_layout(n_nodes, n_crac, int(doc["nodes_per_rack"]))
    nodes = []
    next_core = 0
    for j in range(n_nodes):
        spec = node_types[type_index[j]]
        nodes.append(ComputeNode(
            index=j, spec=spec, type_index=type_index[j],
            rack=int(layout.rack_of_node[j]),
            slot=int(layout.slot_of_node[j]),
            label=layout.label_of_node[j],
            hot_aisle=int(layout.hot_aisle_of_node[j]),
            first_core=next_core))
        next_core += spec.cores_per_node
    total_flow = float(sum(n.spec.flow_m3s for n in nodes))
    a2, a1, a0 = doc["cop_coefficients"]
    cop = CoPModel(a2=a2, a1=a1, a0=a0)
    cracs = [CRACUnit(index=i, flow_m3s=total_flow / n_crac, cop_model=cop,
                      outlet_range_c=tuple(doc["crac_outlet_range_c"]))
             for i in range(n_crac)]
    dc = DataCenter(node_types=node_types, nodes=nodes, cracs=cracs,
                    layout=layout,
                    node_redline_c=float(doc["node_redline_c"]),
                    crac_redline_c=float(doc["crac_redline_c"]))
    if doc.get("alpha") is not None:
        alpha = np.asarray(doc["alpha"], dtype=float)
        dc.thermal = HeatFlowModel(alpha, dc.unit_flows, n_crac)
    return dc


# ---------------------------------------------------------------------------
# assignments
# ---------------------------------------------------------------------------
def assignment_to_dict(t_crac_out: np.ndarray, pstates: np.ndarray,
                       tc: np.ndarray, reward_rate: float,
                       extra: dict[str, Any] | None = None
                       ) -> dict[str, Any]:
    """Serialize the three first-step decisions plus the reward.

    Works for any technique (three-stage, baseline, server-level) since
    all expose the same decision triple; pass provenance via ``extra``.
    """
    doc: dict[str, Any] = {
        "format": FORMAT_VERSION,
        "kind": "assignment",
        "t_crac_out": np.asarray(t_crac_out, dtype=float).tolist(),
        "pstates": np.asarray(pstates, dtype=int).tolist(),
        "tc": np.asarray(tc, dtype=float).tolist(),
        "reward_rate": float(reward_rate),
    }
    if extra:
        doc["extra"] = extra
    return doc


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------
def save_json(doc: dict[str, Any], path: str | Path) -> None:
    """Write a document; parent directories must already exist."""
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True))


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a document back (no kind dispatch — callers know the kind)."""
    return json.loads(Path(path).read_text())
